#include "data/statistics.h"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "geo/geohash.h"
#include "stats/summary.h"

namespace esharing::data {

DatasetSummary summarize(const std::vector<TripRecord>& trips,
                         const geo::LocalProjection& proj) {
  if (trips.empty()) {
    throw std::invalid_argument("summarize: empty trip stream");
  }
  DatasetSummary s;
  s.trips = trips.size();

  std::set<std::int64_t> days, bikes, users;
  std::vector<double> lengths;
  lengths.reserve(trips.size());
  for (const auto& t : trips) {
    days.insert(day_index(t.start_time));
    bikes.insert(t.bike_id);
    users.insert(t.user_id);
    s.hourly_share[static_cast<std::size_t>(hour_of_day(t.start_time))] += 1.0;
    s.weekday_share[static_cast<std::size_t>(weekday_of(t.start_time))] += 1.0;
    const geo::Point a =
        proj.to_local(geo::geohash_decode(t.start_geohash).center);
    const geo::Point b =
        proj.to_local(geo::geohash_decode(t.end_geohash).center);
    lengths.push_back(geo::distance(a, b));
  }
  s.days = static_cast<int>(days.size());
  s.trips_per_day = static_cast<double>(s.trips) / static_cast<double>(s.days);
  for (double& v : s.hourly_share) v /= static_cast<double>(s.trips);
  for (double& v : s.weekday_share) v /= static_cast<double>(s.trips);
  s.mean_trip_m = stats::mean(lengths);
  s.median_trip_m = stats::quantile(lengths, 0.5);
  s.p90_trip_m = stats::quantile(lengths, 0.9);
  s.unique_bikes = bikes.size();
  s.unique_users = users.size();
  s.trips_per_bike =
      static_cast<double>(s.trips) / static_cast<double>(s.unique_bikes);
  return s;
}

std::vector<OdFlow> top_od_flows(const geo::Grid& grid,
                                 const geo::LocalProjection& proj,
                                 const std::vector<TripRecord>& trips,
                                 std::size_t k) {
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> flows;
  for (const auto& t : trips) {
    const geo::Point a =
        proj.to_local(geo::geohash_decode(t.start_geohash).center);
    const geo::Point b =
        proj.to_local(geo::geohash_decode(t.end_geohash).center);
    ++flows[{grid.index_of(grid.clamped_cell_of(a)),
             grid.index_of(grid.clamped_cell_of(b))}];
  }
  std::vector<OdFlow> out;
  out.reserve(flows.size());
  for (const auto& [key, count] : flows) {
    out.push_back({key.first, key.second, count});
  }
  std::sort(out.begin(), out.end(), [](const OdFlow& a, const OdFlow& b) {
    if (a.count != b.count) return a.count > b.count;
    if (a.from_cell != b.from_cell) return a.from_cell < b.from_cell;
    return a.to_cell < b.to_cell;
  });
  out.resize(std::min(k, out.size()));
  return out;
}

}  // namespace esharing::data
