#pragma once

/// \file trip.h
/// Trip records in the Mobike public-dataset schema used by the paper's
/// evaluation: (order id, user id, bike id, bike type, starting time,
/// starting location, ending location), with locations geohashed. The
/// original dataset covers 2017-05-10 .. 2017-05-24 in Beijing; our
/// synthetic replacement (see synthetic_city.h and DESIGN.md) keeps the
/// same schema and calendar so the weekday/weekend structure the paper
/// relies on (Tables II, IV) is preserved.

#include <cstdint>
#include <string>
#include <vector>

namespace esharing::data {

/// Seconds since the dataset epoch (2017-05-10 00:00 local time).
using Seconds = std::int64_t;

inline constexpr Seconds kSecondsPerHour = 3600;
inline constexpr Seconds kSecondsPerDay = 24 * kSecondsPerHour;

enum class Weekday { kMonday = 0, kTuesday, kWednesday, kThursday, kFriday,
                     kSaturday, kSunday };

/// 2017-05-10 was a Wednesday.
inline constexpr Weekday kEpochWeekday = Weekday::kWednesday;

/// Day index (0 = first dataset day) of a timestamp.
[[nodiscard]] constexpr std::int64_t day_index(Seconds t) {
  return t >= 0 ? t / kSecondsPerDay : (t - kSecondsPerDay + 1) / kSecondsPerDay;
}

/// Hour of day in [0, 24).
[[nodiscard]] constexpr int hour_of_day(Seconds t) {
  const Seconds in_day = t - day_index(t) * kSecondsPerDay;
  return static_cast<int>(in_day / kSecondsPerHour);
}

/// Hour index since the epoch (day_index * 24 + hour_of_day).
[[nodiscard]] constexpr std::int64_t hour_index(Seconds t) {
  return day_index(t) * 24 + hour_of_day(t);
}

/// Weekday of a timestamp, anchored at the dataset epoch.
[[nodiscard]] constexpr Weekday weekday_of(Seconds t) {
  const auto d = (static_cast<std::int64_t>(kEpochWeekday) + day_index(t)) % 7;
  return static_cast<Weekday>((d + 7) % 7);
}

[[nodiscard]] constexpr bool is_weekend(Seconds t) {
  const Weekday w = weekday_of(t);
  return w == Weekday::kSaturday || w == Weekday::kSunday;
}

/// Short English name ("Mon".."Sun").
[[nodiscard]] const char* weekday_name(Weekday w);

/// One shared-bike trip in the Mobike schema.
struct TripRecord {
  std::int64_t order_id{0};
  std::int64_t user_id{0};
  std::int64_t bike_id{0};
  int bike_type{1};
  Seconds start_time{0};
  std::string start_geohash;
  std::string end_geohash;
};

/// Order trips by start time (stable tiebreak on order id).
void sort_by_start_time(std::vector<TripRecord>& trips);

}  // namespace esharing::data
