#include "data/binning.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "data/sorted_view.h"
#include "geo/geohash.h"

namespace esharing::data {

DemandMatrix::DemandMatrix(std::size_t n_cells, std::size_t n_hours)
    : n_cells_(n_cells), n_hours_(n_hours), counts_(n_cells * n_hours, 0.0) {
  if (n_cells == 0 || n_hours == 0) {
    throw std::invalid_argument("DemandMatrix: empty dimensions");
  }
}

double DemandMatrix::at(std::size_t cell, std::size_t hour) const {
  if (cell >= n_cells_ || hour >= n_hours_) {
    throw std::out_of_range("DemandMatrix::at: index out of range");
  }
  return counts_[cell * n_hours_ + hour];
}

void DemandMatrix::add(std::size_t cell, std::size_t hour, double count) {
  if (cell >= n_cells_ || hour >= n_hours_) {
    throw std::out_of_range("DemandMatrix::add: index out of range");
  }
  counts_[cell * n_hours_ + hour] += count;
}

std::vector<double> DemandMatrix::cell_series(std::size_t cell) const {
  if (cell >= n_cells_) {
    throw std::out_of_range("DemandMatrix::cell_series: cell out of range");
  }
  return {counts_.begin() + static_cast<std::ptrdiff_t>(cell * n_hours_),
          counts_.begin() + static_cast<std::ptrdiff_t>((cell + 1) * n_hours_)};
}

std::vector<double> DemandMatrix::total_per_hour() const {
  std::vector<double> out(n_hours_, 0.0);
  for (std::size_t c = 0; c < n_cells_; ++c) {
    for (std::size_t h = 0; h < n_hours_; ++h) {
      out[h] += counts_[c * n_hours_ + h];
    }
  }
  return out;
}

std::vector<double> DemandMatrix::total_per_cell() const {
  std::vector<double> out(n_cells_, 0.0);
  for (std::size_t c = 0; c < n_cells_; ++c) {
    out[c] = std::accumulate(
        counts_.begin() + static_cast<std::ptrdiff_t>(c * n_hours_),
        counts_.begin() + static_cast<std::ptrdiff_t>((c + 1) * n_hours_), 0.0);
  }
  return out;
}

std::vector<std::size_t> DemandMatrix::top_cells(std::size_t k) const {
  const auto totals = total_per_cell();
  std::vector<std::size_t> order(n_cells_);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return totals[a] > totals[b];
  });
  order.resize(std::min(k, order.size()));
  return order;
}

DemandMatrix bin_trips(const geo::Grid& grid, const geo::LocalProjection& proj,
                       const std::vector<TripRecord>& trips,
                       std::size_t n_hours) {
  DemandMatrix m(grid.cell_count(), n_hours);
  for (const auto& trip : trips) {
    const auto h = hour_index(trip.start_time);
    if (h < 0 || static_cast<std::size_t>(h) >= n_hours) continue;
    const geo::Point end =
        proj.to_local(geo::geohash_decode(trip.end_geohash).center);
    m.add(grid.index_of(grid.clamped_cell_of(end)), static_cast<std::size_t>(h));
  }
  return m;
}

std::vector<geo::Point> destinations_in_window(
    const geo::LocalProjection& proj, const std::vector<TripRecord>& trips,
    Seconds t0, Seconds t1) {
  std::vector<geo::Point> out;
  for (const auto& trip : trips) {
    if (trip.start_time >= t0 && trip.start_time < t1) {
      out.push_back(proj.to_local(geo::geohash_decode(trip.end_geohash).center));
    }
  }
  return out;
}

std::vector<DemandSite> demand_sites_in_window(
    const geo::Grid& grid, const geo::LocalProjection& proj,
    const std::vector<TripRecord>& trips, Seconds t0, Seconds t1) {
  std::unordered_map<std::size_t, double> counts;
  for (const auto& trip : trips) {
    if (trip.start_time < t0 || trip.start_time >= t1) continue;
    const geo::Point end =
        proj.to_local(geo::geohash_decode(trip.end_geohash).center);
    ++counts[grid.index_of(grid.clamped_cell_of(end))];
  }
  // Demand sites seed plan_offline and the solver goldens — emit them in
  // cell order, never hash order (see data/sorted_view.h).
  std::vector<DemandSite> sites;
  sites.reserve(counts.size());
  for (const auto& [cell, n] : sorted_items(counts)) {
    sites.push_back({grid.centroid_of(grid.cell_at(cell)), n, cell});
  }
  return sites;
}

}  // namespace esharing::data
