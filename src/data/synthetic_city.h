#pragma once

/// \file synthetic_city.h
/// Synthetic replacement for the Mobike public dataset (see DESIGN.md,
/// "Substitutions"). The paper evaluates on 3.2M Beijing trips from
/// 2017-05-10 to 2017-05-24, geohashed, binned into 100x100 m grids.
/// This generator produces trips with the same schema and the statistical
/// structure the algorithms depend on:
///
///  * demand anchored at POIs (subway / office / residential / recreation /
///    university), giving spatial clusters for parking placement;
///  * distinct weekday and weekend diurnal profiles and category mixes,
///    which create the weekday-vs-weekend KS-similarity block structure of
///    Table IV and the forecastable daily periodicity of Table II / Fig. 8;
///  * per-bike continuity (a trip starts where the bike last ended), which
///    lets the energy model trace residual battery per bike id, replacing
///    the paper's XQBike app crawl.

#include <array>
#include <cstdint>
#include <vector>

#include "data/trip.h"
#include "geo/grid.h"
#include "geo/latlon.h"
#include "geo/point.h"
#include "stats/rng.h"

namespace esharing::data {

enum class PoiCategory { kSubway = 0, kOffice, kResidential, kRecreation,
                         kUniversity };
inline constexpr int kNumPoiCategories = 5;

[[nodiscard]] const char* poi_category_name(PoiCategory c);

/// A point of interest anchoring demand.
struct Poi {
  PoiCategory category{PoiCategory::kSubway};
  geo::Point location;     ///< local meters
  double sigma{120.0};     ///< spatial spread of arrivals around the POI
  double popularity{1.0};  ///< base attraction weight
};

/// Generator configuration. Defaults mirror the paper's experimental field:
/// a 3x3 km^2 area, 15 days (2017-05-10..24), 100 m grid granularity.
struct CityConfig {
  double field_size_m{3000.0};
  geo::LatLon sw_corner{39.86, 116.38};  ///< anchor in Beijing
  int num_days{15};
  std::size_t trips_per_weekday{2000};
  std::size_t trips_per_weekend_day{1600};
  std::size_t num_bikes{600};
  std::size_t num_users{3000};
  std::size_t pois_per_category{4};
  int geohash_precision{7};
  double max_trip_m{4800.0};  ///< ~3 miles; average rides stay below this
  double grid_cell_m{100.0};
};

/// Diurnal demand weight of each hour (not normalized).
[[nodiscard]] const std::array<double, 24>& weekday_profile();
[[nodiscard]] const std::array<double, 24>& weekend_profile();

/// Attraction weight of a POI category at a given hour/day type. Encodes
/// commuting structure: offices and subways peak on weekday rush hours,
/// residential in the evening, recreation on weekends.
[[nodiscard]] double category_weight(PoiCategory c, bool weekend, int hour);

/// Deterministic synthetic city.
class SyntheticCity {
 public:
  SyntheticCity(CityConfig config, std::uint64_t seed);

  [[nodiscard]] const CityConfig& config() const { return config_; }
  [[nodiscard]] const std::vector<Poi>& pois() const { return pois_; }
  [[nodiscard]] const geo::LocalProjection& projection() const { return proj_; }
  [[nodiscard]] geo::BoundingBox field() const {
    return {{0.0, 0.0}, {config_.field_size_m, config_.field_size_m}};
  }
  /// The paper's 100x100 m analysis grid over the field.
  [[nodiscard]] geo::Grid grid() const {
    return geo::Grid(field(), config_.grid_cell_m);
  }

  /// Generate all trips over config().num_days, sorted by start time.
  /// Repeated calls continue the same city (bikes keep their positions and
  /// order ids keep increasing), each call covering the next num_days.
  [[nodiscard]] std::vector<TripRecord> generate_trips();

  /// Extra trips clustered at an unusual location — models the paper's
  /// "concert / sports game" demand surge that breaks the historical
  /// distribution (Section III-C).
  [[nodiscard]] std::vector<TripRecord> generate_event_burst(
      Seconds start, Seconds duration, geo::Point center, double sigma,
      std::size_t n_trips);

  /// Decode a record's geohashed locations into the local frame.
  [[nodiscard]] geo::Point start_point(const TripRecord& trip) const;
  [[nodiscard]] geo::Point end_point(const TripRecord& trip) const;

 private:
  [[nodiscard]] geo::Point sample_destination(bool weekend, int hour);
  [[nodiscard]] geo::Point clamp_to_field(geo::Point p) const;
  [[nodiscard]] std::string hash_of(geo::Point p) const;
  [[nodiscard]] TripRecord make_trip(Seconds when, geo::Point dest_hint);

  CityConfig config_;
  stats::Rng rng_;
  geo::LocalProjection proj_;
  std::vector<Poi> pois_;
  std::vector<geo::Point> bike_pos_;   ///< current location per bike id
  std::int64_t next_order_id_{1};
  std::int64_t next_day_{0};           ///< first day of the next generate_trips()
};

}  // namespace esharing::data
