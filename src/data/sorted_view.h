#pragma once

/// \file sorted_view.h
/// Deterministic iteration over unordered containers. Hash-map iteration
/// order depends on the implementation, the allocator and the insertion
/// history, so a range-for over an `unordered_map` must never feed a
/// serialized output path (checkpoints, JSONL events, golden snapshots) —
/// the project lint (`tools/lint`, rule `unordered-iter`) enforces exactly
/// that in the determinism-critical files. These helpers are the sanctioned
/// replacement: copy the items out once, sort by key, iterate the vector.
///
///   for (const auto& [key, value] : data::sorted_items(cells_, by_cell)) ...
///
/// The copy is deliberate: snapshot/serialization paths are cold compared
/// to the per-event hot paths, and a sorted vector is also the shape the
/// wire format and the snapshot structs want downstream.

#include <algorithm>
#include <utility>
#include <vector>

namespace esharing::data {

/// Key-sorted copy of a map's (key, mapped) pairs. `less` compares keys;
/// defaults to `operator<`. Keys are unique in a map, so the order is total
/// and reproducible for any hasher, load factor or insertion history.
template <typename Map, typename Less>
[[nodiscard]] std::vector<
    std::pair<typename Map::key_type, typename Map::mapped_type>>
sorted_items(const Map& m, Less less) {
  std::vector<std::pair<typename Map::key_type, typename Map::mapped_type>>
      items;
  items.reserve(m.size());
  for (const auto& [key, value] : m) {  // lint-ok: unordered-iter sorted below
    items.emplace_back(key, value);
  }
  std::sort(items.begin(), items.end(),
            [&less](const auto& a, const auto& b) {
              return less(a.first, b.first);
            });
  return items;
}

template <typename Map>
[[nodiscard]] std::vector<
    std::pair<typename Map::key_type, typename Map::mapped_type>>
sorted_items(const Map& m) {
  return sorted_items(m, [](const auto& a, const auto& b) { return a < b; });
}

}  // namespace esharing::data
