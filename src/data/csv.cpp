#include "data/csv.h"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "geo/geohash.h"

namespace esharing::data {

namespace {

std::vector<std::string> split_row(const std::string& row) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream ss(row);
  while (std::getline(ss, field, ',')) fields.push_back(field);
  if (!row.empty() && row.back() == ',') fields.emplace_back();
  return fields;
}

std::int64_t parse_int(const std::string& s, const char* what) {
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::invalid_argument(std::string("trip csv: bad integer field '") +
                                s + "' for " + what);
  }
  return value;
}

}  // namespace

std::string trip_csv_header() {
  return "orderid,userid,bikeid,biketype,starttime,"
         "geohashed_start_loc,geohashed_end_loc";
}

std::string to_csv_row(const TripRecord& trip) {
  std::ostringstream os;
  os << trip.order_id << ',' << trip.user_id << ',' << trip.bike_id << ','
     << trip.bike_type << ',' << trip.start_time << ',' << trip.start_geohash
     << ',' << trip.end_geohash;
  return os.str();
}

TripRecord from_csv_row(const std::string& row) {
  const auto fields = split_row(row);
  if (fields.size() != 7) {
    throw std::invalid_argument("trip csv: expected 7 columns, got " +
                                std::to_string(fields.size()));
  }
  TripRecord trip;
  trip.order_id = parse_int(fields[0], "orderid");
  trip.user_id = parse_int(fields[1], "userid");
  trip.bike_id = parse_int(fields[2], "bikeid");
  trip.bike_type = static_cast<int>(parse_int(fields[3], "biketype"));
  trip.start_time = parse_int(fields[4], "starttime");
  trip.start_geohash = fields[5];
  trip.end_geohash = fields[6];
  if (!geo::geohash_valid(trip.start_geohash) ||
      !geo::geohash_valid(trip.end_geohash)) {
    throw std::invalid_argument("trip csv: invalid geohash in row");
  }
  return trip;
}

void write_trips_csv(std::ostream& os, const std::vector<TripRecord>& trips) {
  os << trip_csv_header() << '\n';
  for (const auto& t : trips) os << to_csv_row(t) << '\n';
}

std::vector<TripRecord> read_trips_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::invalid_argument("trip csv: empty input");
  }
  if (line != trip_csv_header()) {
    throw std::invalid_argument("trip csv: unexpected header '" + line + "'");
  }
  std::vector<TripRecord> trips;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    trips.push_back(from_csv_row(line));
  }
  return trips;
}

void save_trips_csv(const std::string& path,
                    const std::vector<TripRecord>& trips) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_trips_csv: cannot open " + path);
  write_trips_csv(os, trips);
}

std::vector<TripRecord> load_trips_csv(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_trips_csv: cannot open " + path);
  return read_trips_csv(is);
}

}  // namespace esharing::data
