#pragma once

/// \file binning.h
/// Trip binning. The paper divides all trips into non-overlapping bins by
/// ending location (100x100 m grids) and works on per-bin arrival counts:
/// the expected arrivals a_j at grid j weight the user-dissatisfaction cost
/// c_ij = a_j * d_ij, and per-bin hourly series feed the prediction engine.

#include <cstddef>
#include <vector>

#include "data/trip.h"
#include "geo/grid.h"
#include "geo/latlon.h"
#include "geo/point.h"

namespace esharing::data {

/// Dense (cells x hours) arrival-count matrix.
class DemandMatrix {
 public:
  DemandMatrix(std::size_t n_cells, std::size_t n_hours);

  [[nodiscard]] std::size_t n_cells() const { return n_cells_; }
  [[nodiscard]] std::size_t n_hours() const { return n_hours_; }

  /// \throws std::out_of_range on bad indices.
  [[nodiscard]] double at(std::size_t cell, std::size_t hour) const;
  void add(std::size_t cell, std::size_t hour, double count = 1.0);

  /// Hourly arrival series of one cell (length n_hours).
  [[nodiscard]] std::vector<double> cell_series(std::size_t cell) const;

  /// City-wide arrivals per hour (length n_hours).
  [[nodiscard]] std::vector<double> total_per_hour() const;

  /// Total arrivals per cell over the whole horizon (length n_cells).
  [[nodiscard]] std::vector<double> total_per_cell() const;

  /// Indices of the `k` cells with the highest total demand, descending —
  /// the paper's "reduce N by filtering out less popular locations".
  [[nodiscard]] std::vector<std::size_t> top_cells(std::size_t k) const;

 private:
  std::size_t n_cells_;
  std::size_t n_hours_;
  std::vector<double> counts_;  // row-major: cell * n_hours + hour
};

/// Bin trips by ending location into `grid` cells and hour index.
/// Trips ending outside the grid are clamped to the border cell, matching
/// the paper's aggregation of the geohashed field.
[[nodiscard]] DemandMatrix bin_trips(const geo::Grid& grid,
                                     const geo::LocalProjection& proj,
                                     const std::vector<TripRecord>& trips,
                                     std::size_t n_hours);

/// Destination points (local frame) of trips starting within [t0, t1).
[[nodiscard]] std::vector<geo::Point> destinations_in_window(
    const geo::LocalProjection& proj, const std::vector<TripRecord>& trips,
    Seconds t0, Seconds t1);

/// One aggregated demand site: a grid centroid plus its expected arrivals
/// a_j. This is the client set of the facility-location formulation.
struct DemandSite {
  geo::Point location;
  double arrivals{0.0};
  std::size_t cell{0};
};

/// Demand sites (cells with nonzero demand) for trips in [t0, t1).
[[nodiscard]] std::vector<DemandSite> demand_sites_in_window(
    const geo::Grid& grid, const geo::LocalProjection& proj,
    const std::vector<TripRecord>& trips, Seconds t0, Seconds t1);

}  // namespace esharing::data
