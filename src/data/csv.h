#pragma once

/// \file csv.h
/// CSV serialization of TripRecord streams in the Mobike column layout:
///   orderid,userid,bikeid,biketype,starttime,geohashed_start_loc,geohashed_end_loc
/// starttime is stored as seconds since the dataset epoch.

#include <iosfwd>
#include <string>
#include <vector>

#include "data/trip.h"

namespace esharing::data {

/// Column header written/expected by the codec.
[[nodiscard]] std::string trip_csv_header();

/// Serialize one record as a CSV row (no trailing newline).
[[nodiscard]] std::string to_csv_row(const TripRecord& trip);

/// Parse one CSV row.
/// \throws std::invalid_argument on malformed rows (wrong column count,
///         non-numeric ids, invalid geohashes).
[[nodiscard]] TripRecord from_csv_row(const std::string& row);

/// Write header + all trips to a stream.
void write_trips_csv(std::ostream& os, const std::vector<TripRecord>& trips);

/// Read a trip CSV produced by write_trips_csv (header required).
/// \throws std::invalid_argument on malformed input.
[[nodiscard]] std::vector<TripRecord> read_trips_csv(std::istream& is);

/// Convenience file wrappers.
/// \throws std::runtime_error if the file cannot be opened.
void save_trips_csv(const std::string& path, const std::vector<TripRecord>& trips);
[[nodiscard]] std::vector<TripRecord> load_trips_csv(const std::string& path);

}  // namespace esharing::data
