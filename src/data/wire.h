#pragma once

/// \file wire.h
/// Minimal little-endian binary (de)serialization helpers shared by the
/// checkpointable components (the stream pipeline state, the online placer,
/// the incentive session). Fixed-width integers and IEEE-754 doubles are
/// written byte-by-byte in little-endian order, so checkpoints are portable
/// across compilers and identical runs produce identical bytes — the
/// property the checkpoint round-trip regression tests lock in.
///
/// Readers throw std::runtime_error on truncated input; container sizes are
/// length-prefixed with u64. This is intentionally not a general format —
/// every consumer writes a magic tag + version first and owns its layout.

#include <cstdint>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

namespace esharing::data::wire {

inline void write_u8(std::ostream& os, std::uint8_t v) {
  os.put(static_cast<char>(v));
}

inline void write_u64(std::ostream& os, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    os.put(static_cast<char>((v >> (8 * i)) & 0xffU));
  }
}

inline void write_i64(std::ostream& os, std::int64_t v) {
  write_u64(os, static_cast<std::uint64_t>(v));
}

inline void write_f64(std::ostream& os, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  write_u64(os, bits);
}

inline void write_string(std::ostream& os, const std::string& s) {
  write_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

[[nodiscard]] inline std::uint8_t read_u8(std::istream& is) {
  const int c = is.get();
  if (c == std::istream::traits_type::eof()) {
    throw std::runtime_error("wire: truncated input (expected u8)");
  }
  return static_cast<std::uint8_t>(c);
}

[[nodiscard]] inline std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(read_u8(is)) << (8 * i);
  }
  return v;
}

[[nodiscard]] inline std::int64_t read_i64(std::istream& is) {
  return static_cast<std::int64_t>(read_u64(is));
}

[[nodiscard]] inline double read_f64(std::istream& is) {
  const std::uint64_t bits = read_u64(is);
  double v;
  __builtin_memcpy(&v, &bits, sizeof(v));
  return v;
}

[[nodiscard]] inline std::string read_string(std::istream& is) {
  const std::uint64_t n = read_u64(is);
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  if (static_cast<std::uint64_t>(is.gcount()) != n) {
    throw std::runtime_error("wire: truncated input (expected string of " +
                             std::to_string(n) + " bytes)");
  }
  return s;
}

/// Read a length prefix that is about to size a container; guards against
/// absurd sizes from corrupted input before any allocation happens.
[[nodiscard]] inline std::uint64_t read_count(std::istream& is,
                                              std::uint64_t sane_max) {
  const std::uint64_t n = read_u64(is);
  if (n > sane_max) {
    throw std::runtime_error("wire: implausible element count " +
                             std::to_string(n) + " (max " +
                             std::to_string(sane_max) + ") — corrupt input?");
  }
  return n;
}

}  // namespace esharing::data::wire
