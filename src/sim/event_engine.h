#pragma once

/// \file event_engine.h
/// A small discrete-event simulation core: a time-ordered event queue with
/// deterministic FIFO tie-breaking. The micro-simulation (microsim.h)
/// schedules trip starts, ride completions and operator shifts on it; it
/// is generic enough for any future agent type.

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "data/trip.h"

namespace esharing::sim {

/// Simulation timestamps reuse the dataset's Seconds epoch.
using data::Seconds;

class EventEngine {
 public:
  using Handler = std::function<void()>;

  /// Schedule `handler` at absolute time `when`.
  /// \throws std::invalid_argument if `when` is before the current time.
  void schedule(Seconds when, Handler handler);

  /// Schedule relative to the current time (delay >= 0).
  void schedule_in(Seconds delay, Handler handler);

  /// Run events in time order until the queue empties or `until` is
  /// passed (events scheduled at exactly `until` still run). Returns the
  /// number of events executed.
  std::size_t run(Seconds until = std::numeric_limits<Seconds>::max());

  /// Execute at most one event; returns false if the queue is empty.
  bool step();

  /// Install a hook invoked after every executed event (after its handler
  /// returns). The intended use is draining a bounded stream::EventBus the
  /// handlers publish into, so a kBlock ring can never stall the single
  /// simulation thread; any side channel works. Pass a null function to
  /// clear. The hook must not call step()/run() reentrantly.
  void set_post_event_hook(Handler hook) { post_event_hook_ = std::move(hook); }

  [[nodiscard]] Seconds now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::size_t executed() const { return executed_; }

 private:
  struct Entry {
    Seconds when;
    std::uint64_t sequence;  ///< FIFO tie-break for simultaneous events
    Handler handler;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.sequence > b.sequence;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  Handler post_event_hook_;
  Seconds now_{0};
  std::uint64_t next_sequence_{0};
  std::size_t executed_{0};
};

}  // namespace esharing::sim
