#pragma once

/// \file simulation.h
/// End-to-end discrete-event simulation of an E-Sharing deployment: a trip
/// stream (from the synthetic city) drives the tier-one placer (drop-offs
/// request parkings, new stations open online), bikes move and drain their
/// batteries, pickups trigger tier-two incentive offers, and a charging
/// operator runs periodic rounds over the stations that still hold
/// low-battery bikes. This is the integration layer the examples and the
/// Fig. 11/12 + Table VI benches run on.

#include <cstdint>
#include <vector>

#include "core/esharing.h"
#include "data/synthetic_city.h"
#include "data/trip.h"
#include "energy/battery.h"
#include "geo/point.h"
#include "geo/spatial_index.h"
#include "stats/rng.h"
#include "stream/pipeline.h"
#include "stream/stream_state.h"

namespace esharing::sim {

/// SimConfig's streaming defaults: one shard, modest rings (1024 — the
/// replay pumps at the ring cadence, so smaller rings mean more pump
/// interleaving, which is what the regression tests exercise).
[[nodiscard]] inline stream::PipelineConfig default_stream_config() {
  stream::PipelineConfig config;
  config.bus.queue_capacity = 1024;
  return config;
}

struct SimConfig {
  core::ESharingConfig esharing;
  energy::EnergyConfig energy;
  double mean_opening_cost{10000.0};  ///< f_i mean, meters-equivalent (paper: 10 km)
  data::Seconds charging_period{data::kSecondsPerDay};  ///< one round per period
  /// User-behaviour sampling ranges (Eq. 13 thresholds).
  double user_max_walk_lo_m{100.0};
  double user_max_walk_hi_m{500.0};
  double user_min_reward_lo{0.0};
  double user_min_reward_hi{1.2};
  std::size_t history_sample_cap{400};  ///< KS reference subsample size
  /// Footnote 2 of the paper: when the last bike at a station is picked
  /// up, the station is removed from P (the online algorithm may establish
  /// one there again later based on demand).
  bool remove_empty_stations{true};
  /// Streaming-replay config (run_streamed): trips are batch-published
  /// onto a transport-mode stream::Pipeline and consumed in merged publish
  /// order, which is regression-tested to be bit-identical to run() at any
  /// (shard count, lane count). Only the transport knobs — `bus`, `lanes`,
  /// `pump_every` — drive the replay; the serving sub-configs (placer,
  /// incentive) ride along for validation because the simulator keeps its
  /// own process_trip serving path.
  stream::PipelineConfig stream = default_stream_config();
  /// Landmark re-anchor cadence (incremental re-optimization engine):
  /// every this many seconds of sim time, the recent demand window is
  /// snapshotted into demand sites and ESharing::reanchor warm re-solves
  /// the offline plan, re-anchoring the online placer's landmarks
  /// (0 disables). Runs in the shared per-trip path, so run() and
  /// run_streamed() stay bit-identical at any shard count.
  data::Seconds reanchor_period{0};
  /// Sliding demand window feeding scheduled re-anchors.
  stream::StreamStateConfig reanchor_state;
  /// Skip a scheduled re-anchor while the window has fewer demand cells.
  std::size_t reanchor_min_cells{2};

  /// Fail fast on inconsistent parameters (including the nested
  /// ESharingConfig). Called by the Simulation constructor.
  /// \throws std::invalid_argument on the first violated constraint.
  void validate() const;
};

struct SimMetrics {
  std::size_t trips{0};
  double walking_cost_m{0.0};  ///< total user dissatisfaction incurred
  std::size_t stations_final{0};
  std::size_t stations_online_opened{0};
  std::size_t stations_removed{0};  ///< footnote-2 removals (emptied)
  std::size_t reanchors{0};         ///< landmark re-anchors executed
  double incentives_paid{0.0};
  std::size_t offers_made{0};
  std::size_t relocations{0};
  std::vector<core::ChargingRoundResult> charging_rounds;

  [[nodiscard]] double avg_walk_m() const {
    return trips == 0 ? 0.0 : walking_cost_m / static_cast<double>(trips);
  }
  [[nodiscard]] double total_charging_cost() const;
  [[nodiscard]] double total_moving_distance_m() const;
  /// Mean percentage of low bikes charged per round.
  [[nodiscard]] double mean_pct_charged() const;
};

class Simulation {
 public:
  /// The city is only used for its projection/geometry (const access).
  Simulation(const data::SyntheticCity& city, SimConfig config,
             std::uint64_t seed);

  /// Bootstrap tier one from historical trips: aggregate demand sites, run
  /// the offline plan and start the online placer with a KS reference
  /// sample. Also initializes bike positions at their first-seen start
  /// locations (falling back to offline parkings).
  /// \throws std::invalid_argument on an empty history.
  void bootstrap(const std::vector<data::TripRecord>& history);

  /// Replay a live trip stream. Can be called repeatedly; time advances
  /// monotonically with the trips.
  /// \throws std::logic_error if bootstrap was not called.
  SimMetrics run(const std::vector<data::TripRecord>& live);

  /// Replay the same trip stream through the esharing::stream front door:
  /// every trip is published onto a bounded sharded EventBus (knobs in
  /// SimConfig) and consumed in merged seq order. Produces bit-identical
  /// metrics, station sets and incentive payouts to run() at any shard
  /// count — the end-to-end regression the stream tests lock in. The
  /// optional `bus_stats` receives the bus counters of the replay.
  /// \throws std::logic_error if bootstrap was not called.
  SimMetrics run_streamed(const std::vector<data::TripRecord>& live,
                          stream::BusStats* bus_stats = nullptr);

  [[nodiscard]] const core::ESharing& system() const { return system_; }
  [[nodiscard]] const energy::BikeFleet& fleet() const { return fleet_; }
  [[nodiscard]] const SimConfig& config() const { return config_; }

 private:
  void open_incentive_session();
  void close_charging_period(SimMetrics& metrics);
  /// Scheduled landmark re-anchor at period boundary `as_of`: snapshot the
  /// demand window, warm re-solve, re-anchor the placer (skipped while the
  /// window holds fewer than reanchor_min_cells cells).
  void maybe_reanchor(data::Seconds as_of);
  /// The shared per-trip logic of run() and run_streamed(): charging-period
  /// rollover, tier-one request, footnote-2 removal, tier-two offer, bike
  /// movement and metric accrual.
  void process_trip(const data::TripRecord& trip, SimMetrics& metrics);
  /// Flush the open charging period and fill the station-count metrics.
  void finalize(SimMetrics& metrics);
  /// Index of the nearest active placer station to `p`.
  [[nodiscard]] std::size_t nearest_active_station(geo::Point p) const;

  const data::SyntheticCity& city_;
  SimConfig config_;
  stats::Rng rng_;
  core::ESharing system_;
  energy::BikeFleet fleet_;
  std::vector<geo::Point> bike_pos_;
  /// Bikes parked per placer-station index (parallel to placer stations()).
  std::vector<int> station_bikes_;
  std::size_t stations_removed_{0};
  std::vector<core::EnergyStation> session_station_snapshot_;
  /// Bucketed index over the session's station snapshot locations (fixed
  /// for the lifetime of one incentive session).
  geo::SpatialIndex session_index_;
  std::optional<core::IncentiveMechanism> session_;
  data::Seconds next_round_at_{0};
  /// Demand window behind scheduled re-anchors (engaged when
  /// reanchor_period > 0).
  std::optional<stream::StreamState> demand_state_;
  data::Seconds next_reanchor_at_{0};
  std::size_t reanchors_{0};
  bool bootstrapped_{false};
};

}  // namespace esharing::sim
