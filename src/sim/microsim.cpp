#include "sim/microsim.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "data/binning.h"
#include "geo/spatial_index.h"
#include "stats/spatial.h"

namespace esharing::sim {

using data::TripRecord;
using geo::Point;

MicroSimulation::MicroSimulation(const data::SyntheticCity& city,
                                 MicroSimConfig config, std::uint64_t seed)
    : city_(city),
      config_(config),
      rng_(seed),
      system_(config.esharing, seed ^ 0x5151515151ULL),
      fleet_(city.config().num_bikes, config.energy, seed ^ 0x246802468ULL),
      bikes_(city.config().num_bikes) {
  if (!(config_.walk_radius_m > 0.0)) {
    throw std::invalid_argument("MicroSimulation: walk radius must be positive");
  }
  if (!(config_.ride_speed_mps > 0.0)) {
    throw std::invalid_argument("MicroSimulation: ride speed must be positive");
  }
}

void MicroSimulation::bootstrap(const std::vector<TripRecord>& history) {
  if (history.empty()) {
    throw std::invalid_argument("MicroSimulation::bootstrap: empty history");
  }
  data::Seconds lo = history.front().start_time, hi = lo;
  for (const auto& t : history) {
    lo = std::min(lo, t.start_time);
    hi = std::max(hi, t.start_time);
  }
  const auto grid = city_.grid();
  const auto sites = data::demand_sites_in_window(grid, city_.projection(),
                                                  history, lo, hi + 1);
  const double mean_f = config_.mean_opening_cost;
  system_.plan_offline(sites, [mean_f](Point p) {
    return mean_f * (0.5 + stats::hash_noise(p, 100.0, 0xbead5ULL));
  });
  auto sample = data::destinations_in_window(city_.projection(), history, lo,
                                             hi + 1);
  if (sample.size() > config_.history_sample_cap) {
    rng_.shuffle(sample);
    sample.resize(config_.history_sample_cap);
  }
  system_.start_online(std::move(sample));

  // Park the fleet at the planned stations, spread round-robin.
  const auto parkings = system_.parking_locations();
  for (std::size_t b = 0; b < bikes_.size(); ++b) {
    bikes_[b] = {parkings[b % parkings.size()], false};
  }
  bootstrapped_ = true;
}

std::optional<std::size_t> MicroSimulation::find_bike(Point from,
                                                      double trip_m) const {
  // Nearest parked bike within the walk radius whose battery survives the
  // trip; among reachable-but-drained bikes none qualifies.
  double best = std::numeric_limits<double>::infinity();
  std::optional<std::size_t> best_bike;
  for (std::size_t b = 0; b < bikes_.size(); ++b) {
    if (bikes_[b].in_ride) continue;
    const double d = geo::distance(bikes_[b].position, from);
    if (d > config_.walk_radius_m || d >= best) continue;
    if (!fleet_.can_ride(b, trip_m)) continue;
    best = d;
    best_bike = b;
  }
  return best_bike;
}

void MicroSimulation::attach_stream(
    stream::EventBus* bus,
    std::function<void(const std::vector<stream::Event>&)> on_batch) {
  stream_bus_ = bus;
  stream_on_batch_ = std::move(on_batch);
}

void MicroSimulation::handle_request(Point origin, Point destination,
                                     MicroSimMetrics& metrics) {
  ++metrics.demand;
  if (stream_bus_ != nullptr) {
    stream::Event e;
    e.kind = stream::EventKind::kTripEnd;
    e.time = engine_.now();
    e.where = destination;
    e.origin = origin;
    stream_bus_->publish(e);
  }

  // Any parked bike within reach at all?
  bool any_reachable = false;
  for (std::size_t b = 0; b < bikes_.size() && !any_reachable; ++b) {
    any_reachable = !bikes_[b].in_ride &&
                    geo::distance(bikes_[b].position, origin) <=
                        config_.walk_radius_m;
  }

  // The drop-off parking is assigned online at request time (Algorithm 2).
  const auto decision = system_.handle_request(destination);
  const Point parking =
      system_.placer().stations()[decision.facility].location;

  const auto bike = find_bike(origin, geo::distance(origin, parking) + 500.0);
  if (!bike.has_value()) {
    if (any_reachable) {
      ++metrics.lost_low_battery;
    } else {
      ++metrics.lost_no_bike;
    }
    return;
  }

  ++metrics.served;
  metrics.walk_to_bike_m += geo::distance(bikes_[*bike].position, origin);
  metrics.walk_from_parking_m += geo::distance(parking, destination);

  BikeState& state = bikes_[*bike];
  state.in_ride = true;
  const double ride_m = geo::distance(state.position, parking);
  const auto ride_s = static_cast<Seconds>(ride_m / config_.ride_speed_mps) + 1;
  engine_.schedule_in(ride_s, [this, b = *bike, parking, ride_m]() {
    bikes_[b].in_ride = false;
    bikes_[b].position = parking;
    fleet_.ride(b, ride_m);
    if (stream_bus_ != nullptr) {
      // Post-ride residual-battery report: the telemetry feed that keeps
      // the stream-side low-battery watchlist fresh.
      stream::Event e;
      e.kind = stream::EventKind::kBatteryLevel;
      e.time = engine_.now();
      e.where = parking;
      e.bike_id = static_cast<std::int64_t>(b);
      e.soc = fleet_.soc(b);
      stream_bus_->publish(e);
    }
  });
}

void MicroSimulation::charging_shift(MicroSimMetrics& metrics) {
  // Pile up low bikes at their nearest parking and run the operators.
  const auto parkings = system_.parking_locations();
  std::vector<core::EnergyStation> stations;
  stations.reserve(parkings.size());
  for (Point p : parkings) stations.push_back({p, {}});
  const geo::SpatialIndex parking_index(parkings);
  for (std::size_t b = 0; b < bikes_.size(); ++b) {
    if (!bikes_[b].in_ride && fleet_.is_low(b)) {
      stations[parking_index.nearest(bikes_[b].position)]
          .low_bikes.push_back(b);
    }
  }
  const auto round = core::run_charging_round_multi(
      stations, config_.esharing.incentive.costs,
      config_.esharing.charging_operator, config_.n_operators);
  for (std::size_t s : round.route) {
    for (std::size_t b : stations[s].low_bikes) fleet_.recharge(b);
  }
  metrics.rounds.push_back(round);
}

MicroSimMetrics MicroSimulation::run(const std::vector<TripRecord>& live) {
  if (!bootstrapped_) {
    throw std::logic_error("MicroSimulation::run: bootstrap first");
  }
  std::vector<TripRecord> trips = live;
  data::sort_by_start_time(trips);
  MicroSimMetrics metrics;
  if (trips.empty()) return metrics;

  // Schedule every trip request.
  for (const auto& trip : trips) {
    const Point origin = city_.start_point(trip);
    const Point dest = city_.end_point(trip);
    engine_.schedule(trip.start_time, [this, origin, dest, &metrics]() {
      handle_request(origin, dest, metrics);
    });
  }
  // Nightly charging shifts across the horizon.
  const auto first_day = data::day_index(trips.front().start_time);
  const auto last_day = data::day_index(trips.back().start_time);
  for (auto day = first_day; day <= last_day; ++day) {
    const Seconds at = day * data::kSecondsPerDay + config_.charging_shift_at;
    if (at < engine_.now()) continue;
    engine_.schedule(at, [this, &metrics]() { charging_shift(metrics); });
  }

  if (stream_bus_ != nullptr && stream_on_batch_) {
    engine_.set_post_event_hook([this]() {
      std::vector<stream::Event> batch;
      if (stream_bus_->drain_all_ordered(batch) > 0) stream_on_batch_(batch);
    });
  }
  engine_.run();
  engine_.set_post_event_hook(nullptr);
  return metrics;
}

}  // namespace esharing::sim
