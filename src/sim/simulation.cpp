#include "sim/simulation.h"

#include <algorithm>
#include <stdexcept>

#include "obs/registry.h"
#include "stats/spatial.h"

namespace esharing::sim {

using data::Seconds;
using data::TripRecord;
using geo::Point;

namespace {

struct SimObsMetrics {
  obs::Counter& trips;
  obs::Counter& charging_rounds;
  obs::Counter& reanchors;
  obs::Histogram& charging_round_cost;

  static SimObsMetrics& get() {
    static SimObsMetrics m{
        obs::Registry::global().counter("sim.simulation.trips"),
        obs::Registry::global().counter("sim.simulation.charging_rounds"),
        obs::Registry::global().counter("sim.simulation.reanchors"),
        obs::Registry::global().histogram(
            "sim.simulation.charging_round_cost",
            {1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6}),
    };
    return m;
  }
};

}  // namespace

void SimConfig::validate() const {
  esharing.validate();
  const auto fail = [](const std::string& field, double got,
                       const std::string& why) {
    throw std::invalid_argument("SimConfig: " + field + " = " +
                                std::to_string(got) + " is invalid: " + why);
  };
  if (!(energy.consumption_per_km > 0.0)) {
    fail("energy.consumption_per_km", energy.consumption_per_km,
         "bikes must drain charge when ridden, or low-battery piles never "
         "form");
  }
  if (!(energy.low_threshold > 0.0 && energy.low_threshold <= 1.0)) {
    fail("energy.low_threshold", energy.low_threshold,
         "the low-battery threshold is a state-of-charge fraction in (0, 1]");
  }
  if (!(energy.low_tail_fraction >= 0.0 && energy.low_tail_fraction <= 1.0)) {
    fail("energy.low_tail_fraction", energy.low_tail_fraction,
         "the share of the fleet seeded low must lie in [0, 1]");
  }
  if (!(energy.min_soc >= 0.0 && energy.min_soc < 1.0)) {
    fail("energy.min_soc", energy.min_soc,
         "the floor state of charge must lie in [0, 1)");
  }
  if (!(mean_opening_cost > 0.0)) {
    fail("mean_opening_cost", mean_opening_cost,
         "the opening-cost field mean must be positive or every request "
         "opens a station");
  }
  if (charging_period <= 0) {
    fail("charging_period", static_cast<double>(charging_period),
         "the operator round period is a duration in seconds and must be "
         "positive");
  }
  if (!(user_max_walk_lo_m >= 0.0)) {
    fail("user_max_walk_lo_m", user_max_walk_lo_m,
         "walking tolerances are distances and cannot be negative");
  }
  if (!(user_max_walk_hi_m >= user_max_walk_lo_m)) {
    fail("user_max_walk_hi_m", user_max_walk_hi_m,
         "the sampling range upper bound must be >= user_max_walk_lo_m");
  }
  if (!(user_min_reward_hi >= user_min_reward_lo)) {
    fail("user_min_reward_hi", user_min_reward_hi,
         "the sampling range upper bound must be >= user_min_reward_lo");
  }
  if (history_sample_cap == 0) {
    fail("history_sample_cap", 0.0,
         "the KS reference needs at least one historical destination");
  }
  // The nested pipeline config carries its own messages (EventBusConfig /
  // PlacerDriverConfig / IncentiveDriverConfig name the offending field).
  stream.validate();
  if (reanchor_period < 0) {
    fail("reanchor_period", static_cast<double>(reanchor_period),
         "the landmark re-anchor cadence is a duration in seconds; use 0 "
         "to disable re-anchoring");
  }
  if (reanchor_period > 0) {
    reanchor_state.validate();
    if (reanchor_min_cells == 0) {
      fail("reanchor_min_cells", 0.0,
           "a re-anchor needs at least one demand cell to build an "
           "instance from (set reanchor_period = 0 to disable instead)");
    }
  }
}

double SimMetrics::total_charging_cost() const {
  double sum = incentives_paid;
  for (const auto& r : charging_rounds) sum += r.total_cost(0.0);
  return sum;
}

double SimMetrics::total_moving_distance_m() const {
  double sum = 0.0;
  for (const auto& r : charging_rounds) sum += r.moving_distance_m;
  return sum;
}

double SimMetrics::mean_pct_charged() const {
  if (charging_rounds.empty()) return 100.0;
  double sum = 0.0;
  for (const auto& r : charging_rounds) sum += r.pct_charged();
  return sum / static_cast<double>(charging_rounds.size());
}

Simulation::Simulation(const data::SyntheticCity& city, SimConfig config,
                       std::uint64_t seed)
    : city_(city),
      config_(config),
      rng_(seed),
      system_(config.esharing, seed ^ 0xa5a5a5a5a5a5a5a5ULL),
      fleet_(city.config().num_bikes, config.energy, seed ^ 0x0f0f0f0f0f0f0fULL),
      bike_pos_(city.config().num_bikes, Point{0.0, 0.0}) {
  config_.validate();
}

void Simulation::bootstrap(const std::vector<TripRecord>& history) {
  if (history.empty()) {
    throw std::invalid_argument("Simulation::bootstrap: empty history");
  }
  Seconds lo = history.front().start_time, hi = history.front().start_time;
  for (const auto& t : history) {
    lo = std::min(lo, t.start_time);
    hi = std::max(hi, t.start_time);
  }
  const auto grid = city_.grid();
  const auto sites = data::demand_sites_in_window(grid, city_.projection(),
                                                  history, lo, hi + 1);

  // Reproducible uniform random opening-cost field with the configured mean
  // (paper: "uniformly randomly distributed with mean of 10 km").
  const double mean_f = config_.mean_opening_cost;
  const double cell = city_.config().grid_cell_m;
  const std::uint64_t field_seed = 0xfeedc0dedeadbeefULL;
  auto opening_cost = [mean_f, cell, field_seed](Point p) {
    return mean_f * (0.5 + stats::hash_noise(p, cell, field_seed));
  };
  system_.plan_offline(sites, opening_cost);

  // KS reference: a capped subsample of historical destinations.
  auto dests = data::destinations_in_window(city_.projection(), history, lo, hi + 1);
  if (dests.size() > config_.history_sample_cap) {
    rng_.shuffle(dests);
    dests.resize(config_.history_sample_cap);
  }
  system_.start_online(std::move(dests));

  // Bikes start at their first-seen start location, or at an offline
  // parking for bikes that never appear in the history.
  const auto parkings = system_.parking_locations();
  for (std::size_t b = 0; b < bike_pos_.size(); ++b) {
    bike_pos_[b] = parkings[b % parkings.size()];
  }
  std::vector<bool> seen(bike_pos_.size(), false);
  for (const auto& t : history) {
    const auto b = static_cast<std::size_t>(t.bike_id - 1) % bike_pos_.size();
    if (!seen[b]) {
      seen[b] = true;
      bike_pos_[b] = city_.start_point(t);
    }
  }

  // Station inventory: bikes counted at their nearest parking (footnote 2
  // removals trigger once a station's last bike is picked up).
  station_bikes_.assign(system_.placer().stations().size(), 0);
  for (std::size_t b = 0; b < bike_pos_.size(); ++b) {
    ++station_bikes_[nearest_active_station(bike_pos_[b])];
  }

  open_incentive_session();
  next_round_at_ = hi + 1 + config_.charging_period;
  if (config_.reanchor_period > 0) {
    demand_state_.emplace(config_.reanchor_state);
    next_reanchor_at_ = hi + 1 + config_.reanchor_period;
  }
  bootstrapped_ = true;
}

std::size_t Simulation::nearest_active_station(Point p) const {
  // The placer maintains a spatial index over its stations; a miss (no
  // active station) keeps this helper's legacy fallback of index 0.
  const std::size_t i = system_.placer().nearest_active(p);
  return i >= system_.placer().stations().size() ? 0 : i;
}

void Simulation::open_incentive_session() {
  const auto parkings = system_.parking_locations();
  session_station_snapshot_.clear();
  session_station_snapshot_.reserve(parkings.size());
  for (Point p : parkings) session_station_snapshot_.push_back({p, {}});
  session_index_ = geo::SpatialIndex(parkings);
  for (std::size_t b = 0; b < bike_pos_.size(); ++b) {
    if (fleet_.is_low(b)) {
      const std::size_t s = session_index_.nearest(bike_pos_[b]);
      session_station_snapshot_[s].low_bikes.push_back(b);
    }
  }
  session_.emplace(session_station_snapshot_,
                   config_.esharing.incentive);
}

void Simulation::close_charging_period(SimMetrics& metrics) {
  if (!session_.has_value()) return;
  metrics.incentives_paid += session_->total_incentives_paid();
  metrics.offers_made += session_->offers_made();
  metrics.relocations += session_->relocations();

  const auto round = system_.charge(*session_);
  for (std::size_t s : round.route) {
    for (std::size_t b : session_->stations()[s].low_bikes) {
      fleet_.recharge(b);
    }
  }
  metrics.charging_rounds.push_back(round);
  if (obs::enabled()) {
    SimObsMetrics::get().charging_rounds.add();
    SimObsMetrics::get().charging_round_cost.observe(round.total_cost(0.0));
    obs::Registry::global().emit(
        "sim.charging_round",
        {{"stations_visited", round.stations_visited},
         {"bikes_charged", round.bikes_charged},
         {"cost", round.total_cost(0.0)}});
  }
  open_incentive_session();
}

void Simulation::maybe_reanchor(Seconds as_of) {
  const auto snap = demand_state_->snapshot(as_of);
  if (snap.cells.size() < config_.reanchor_min_cells) return;
  const double cell = config_.reanchor_state.cell_m;
  std::vector<data::DemandSite> sites;
  sites.reserve(snap.cells.size());
  for (const auto& c : snap.cells) {
    data::DemandSite site;
    site.location = {(static_cast<double>(c.cx) + 0.5) * cell,
                     (static_cast<double>(c.cy) + 0.5) * cell};
    site.arrivals = static_cast<double>(c.count);
    sites.push_back(site);
  }
  system_.reanchor(sites);
  // A re-anchor can establish stations; keep the inventory vector parallel.
  station_bikes_.resize(system_.placer().stations().size(), 0);
  ++reanchors_;
  if (obs::enabled()) SimObsMetrics::get().reanchors.add();
}

void Simulation::process_trip(const TripRecord& trip, SimMetrics& metrics) {
  while (trip.start_time >= next_round_at_) {
    close_charging_period(metrics);
    next_round_at_ += config_.charging_period;
  }
  if (config_.reanchor_period > 0) {
    while (trip.start_time >= next_reanchor_at_) {
      maybe_reanchor(next_reanchor_at_);
      next_reanchor_at_ += config_.reanchor_period;
    }
  }

  const Point dest = city_.end_point(trip);
  if (demand_state_.has_value()) {
    stream::Event demand;
    demand.kind = stream::EventKind::kTripEnd;
    demand.time = trip.start_time;
    demand.where = dest;
    demand_state_->ingest(demand);
  }
  const auto decision = system_.handle_request(dest);
  const Point assigned =
      system_.placer().stations()[decision.facility].location;
  station_bikes_.resize(system_.placer().stations().size(), 0);

  const auto bike =
      static_cast<std::size_t>(trip.bike_id - 1) % bike_pos_.size();
  const Point origin = bike_pos_[bike];

  // Pick-up empties the origin station's inventory; footnote 2: a
  // station whose last bike leaves is removed from P (it can be
  // re-established online later).
  const std::size_t origin_station = nearest_active_station(origin);
  if (station_bikes_[origin_station] > 0) {
    --station_bikes_[origin_station];
  }
  if (config_.remove_empty_stations &&
      station_bikes_[origin_station] == 0 &&
      system_.placer().num_active() > 1) {
    system_.placer().remove_station(origin_station);
    ++stations_removed_;
  }

  // Tier-two offer at pickup time.
  core::Offer offer;
  if (session_.has_value() && !session_station_snapshot_.empty()) {
    // session_index_ mirrors the session snapshot's station locations.
    const std::size_t pickup_station = session_index_.nearest(origin);
    const core::UserBehavior user{
        rng_.uniform(config_.user_max_walk_lo_m, config_.user_max_walk_hi_m),
        rng_.uniform(config_.user_min_reward_lo, config_.user_min_reward_hi)};
    offer = session_->handle_pickup(
        pickup_station, assigned, user,
        [this](std::size_t b, double dist) { return fleet_.can_ride(b, dist); });
  }

  if (offer.accepted) {
    // The user rides the low-energy bike to the aggregation station and
    // walks the extra distance to the destination; their intended bike
    // stays where it was.
    // The departing bike is the low-energy one (it sits at the same
    // pickup station the user walked to); the origin decrement above
    // already accounts for it.
    const Point target = session_->stations()[offer.to_station].location;
    fleet_.ride(offer.bike, offer.ride_m);
    bike_pos_[offer.bike] = target;
    ++station_bikes_[nearest_active_station(target)];
    metrics.walking_cost_m += geo::distance(dest, target);
  } else {
    const double ride = geo::distance(origin, assigned);
    fleet_.ride(bike, ride);
    bike_pos_[bike] = assigned;
    ++station_bikes_[nearest_active_station(assigned)];
    metrics.walking_cost_m += geo::distance(dest, assigned);
  }
  ++metrics.trips;
  if (obs::enabled()) SimObsMetrics::get().trips.add();
}

void Simulation::finalize(SimMetrics& metrics) {
  // Flush the open period so its incentives/charging land in the metrics.
  close_charging_period(metrics);
  next_round_at_ += config_.charging_period;

  metrics.stations_final = system_.placer().num_active();
  metrics.stations_online_opened = system_.placer().num_online_opened();
  metrics.stations_removed = stations_removed_;
  metrics.reanchors = reanchors_;
}

SimMetrics Simulation::run(const std::vector<TripRecord>& live) {
  if (!bootstrapped_) {
    throw std::logic_error("Simulation::run: bootstrap first");
  }
  std::vector<TripRecord> trips = live;
  data::sort_by_start_time(trips);

  SimMetrics metrics;
  for (const auto& trip : trips) process_trip(trip, metrics);
  finalize(metrics);
  return metrics;
}

SimMetrics Simulation::run_streamed(const std::vector<TripRecord>& live,
                                    stream::BusStats* bus_stats) {
  if (!bootstrapped_) {
    throw std::logic_error("Simulation::run_streamed: bootstrap first");
  }
  std::vector<TripRecord> trips = live;
  data::sort_by_start_time(trips);

  // Transport-mode pipeline: parallel shard drains + merge-by-seq, with
  // this simulator's process_trip as the sequential consumer. Consuming in
  // merged seq order reproduces the sorted trip order exactly, so the
  // mutation sequence (placer, RNG, fleet) matches run() bit for bit at
  // any shard count and lane count.
  stream::Pipeline pipeline(config_.stream);
  SimMetrics metrics;
  const auto consume = [&](const stream::Event& e) {
    process_trip(trips[static_cast<std::size_t>(e.ref)], metrics);
  };

  // Publish in batches bounded by the ring capacity and pump between
  // them: the worst case routes a whole batch to one shard, so a kBlock
  // bus can never deadlock this single-threaded replay.
  const std::size_t capacity = config_.stream.bus.queue_capacity;
  std::vector<stream::Event> chunk;
  chunk.reserve(std::min(capacity, trips.size()));
  for (std::size_t i = 0; i < trips.size(); ++i) {
    const TripRecord& trip = trips[i];
    stream::Event e;
    e.kind = stream::EventKind::kTripEnd;
    e.time = trip.start_time;
    e.where = city_.end_point(trip);
    e.origin = city_.start_point(trip);
    e.bike_id = trip.bike_id;
    e.ref = static_cast<std::int64_t>(i);
    chunk.push_back(e);
    if (chunk.size() == capacity) {
      pipeline.publish_batch(chunk);
      pipeline.pump_into(consume);
      chunk.clear();
    }
  }
  pipeline.publish_batch(chunk);
  pipeline.pump_into(consume);
  finalize(metrics);
  if (bus_stats != nullptr) *bus_stats = pipeline.stats().bus;
  return metrics;
}

}  // namespace esharing::sim
