#pragma once

/// \file microsim.h
/// Agent-level micro-simulation on the discrete-event engine. Where
/// sim::Simulation replays trips instantaneously, the micro-simulation
/// models what the paper's business argument actually hinges on —
/// *customer loss*: a rider only becomes a trip if an available,
/// sufficiently-charged bike stands within walking distance when the
/// request fires; bikes are unavailable while ridden; the nightly charging
/// shift restores drained bikes. The resulting service rate quantifies how
/// placement, fleet size and charging policy translate into served demand
/// ("if no station is available nearby ... she may choose not to buy the
/// service").

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/esharing.h"
#include "data/synthetic_city.h"
#include "energy/battery.h"
#include "sim/event_engine.h"
#include "stats/rng.h"
#include "stream/event_bus.h"

namespace esharing::sim {

struct MicroSimConfig {
  core::ESharingConfig esharing;
  energy::EnergyConfig energy;
  double mean_opening_cost{10000.0};
  double walk_radius_m{400.0};   ///< how far a rider walks to reach a bike
  double ride_speed_mps{4.0};    ///< e-bike cruise speed
  Seconds charging_shift_at{22 * data::kSecondsPerHour};  ///< daily local time
  std::size_t n_operators{1};
  std::size_t history_sample_cap{400};
};

struct MicroSimMetrics {
  std::size_t demand{0};             ///< trip requests fired
  std::size_t served{0};             ///< rides that actually happened
  std::size_t lost_no_bike{0};       ///< no parked bike within walk radius
  std::size_t lost_low_battery{0};   ///< reachable bikes too drained
  double walk_to_bike_m{0.0};        ///< access walking (demand side)
  double walk_from_parking_m{0.0};   ///< egress walking (dissatisfaction)
  std::vector<core::ChargingRoundResult> rounds;

  [[nodiscard]] double service_rate() const {
    return demand == 0 ? 1.0
                       : static_cast<double>(served) /
                             static_cast<double>(demand);
  }
  [[nodiscard]] double mean_egress_walk_m() const {
    return served == 0 ? 0.0
                       : walk_from_parking_m / static_cast<double>(served);
  }
};

class MicroSimulation {
 public:
  MicroSimulation(const data::SyntheticCity& city, MicroSimConfig config,
                  std::uint64_t seed);

  /// Plan parkings from historical trips and park the fleet.
  /// \throws std::invalid_argument on an empty history.
  void bootstrap(const std::vector<data::TripRecord>& history);

  /// Simulate the live trip stream at agent level. Returns the metrics of
  /// this run. \throws std::logic_error if bootstrap was not called.
  MicroSimMetrics run(const std::vector<data::TripRecord>& live);

  /// Tee the simulated telemetry onto a stream bus: every demand request
  /// publishes a kTripEnd event (origin + destination, the tier-one
  /// signal) and every ride completion a kBatteryLevel report with the
  /// bike's post-ride state of charge — the same feed a deployed system
  /// would crawl. When `on_batch` is set, the event engine drains the bus
  /// in merged seq order after every simulation event and hands the batch
  /// over (so a bounded kBlock ring can never stall the simulation
  /// thread); without it the caller drains. `bus` must outlive run();
  /// nullptr detaches.
  void attach_stream(
      stream::EventBus* bus,
      std::function<void(const std::vector<stream::Event>&)> on_batch = {});

  [[nodiscard]] const core::ESharing& system() const { return system_; }
  [[nodiscard]] const energy::BikeFleet& fleet() const { return fleet_; }

 private:
  struct BikeState {
    geo::Point position;
    bool in_ride{false};
  };

  void handle_request(geo::Point origin, geo::Point destination,
                      MicroSimMetrics& metrics);
  void charging_shift(MicroSimMetrics& metrics);
  /// Best available bike for a trip of `trip_m` meters starting near
  /// `from`, or nullopt.
  [[nodiscard]] std::optional<std::size_t> find_bike(geo::Point from,
                                                     double trip_m) const;

  const data::SyntheticCity& city_;
  MicroSimConfig config_;
  stats::Rng rng_;
  core::ESharing system_;
  energy::BikeFleet fleet_;
  std::vector<BikeState> bikes_;
  EventEngine engine_;
  stream::EventBus* stream_bus_{nullptr};
  std::function<void(const std::vector<stream::Event>&)> stream_on_batch_;
  bool bootstrapped_{false};
};

}  // namespace esharing::sim
