#include "sim/event_engine.h"

#include <stdexcept>
#include <utility>

#include "obs/registry.h"

namespace esharing::sim {

namespace {

struct EngineMetrics {
  obs::Counter& events_executed;
  obs::Counter& runs;

  static EngineMetrics& get() {
    static EngineMetrics m{
        obs::Registry::global().counter("sim.event_engine.events_executed"),
        obs::Registry::global().counter("sim.event_engine.runs"),
    };
    return m;
  }
};

}  // namespace

void EventEngine::schedule(Seconds when, Handler handler) {
  if (when < now_) {
    throw std::invalid_argument("EventEngine::schedule: event in the past");
  }
  if (!handler) {
    throw std::invalid_argument("EventEngine::schedule: null handler");
  }
  queue_.push({when, next_sequence_++, std::move(handler)});
}

void EventEngine::schedule_in(Seconds delay, Handler handler) {
  if (delay < 0) {
    throw std::invalid_argument("EventEngine::schedule_in: negative delay");
  }
  schedule(now_ + delay, std::move(handler));
}

bool EventEngine::step() {
  if (queue_.empty()) return false;
  // Copy out before popping: the handler may schedule more events.
  Entry entry = queue_.top();
  queue_.pop();
  now_ = entry.when;
  ++executed_;
  entry.handler();
  if (post_event_hook_) post_event_hook_();
  return true;
}

std::size_t EventEngine::run(Seconds until) {
  std::size_t count = 0;
  while (!queue_.empty() && queue_.top().when <= until) {
    if (!step()) break;
    ++count;
  }
  if (now_ < until && until != std::numeric_limits<Seconds>::max()) {
    now_ = until;  // time advances to the horizon even without events
  }
  if (obs::enabled()) {
    EngineMetrics::get().runs.add();
    EngineMetrics::get().events_executed.add(count);
  }
  return count;
}

}  // namespace esharing::sim
