#include "exec/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "obs/registry.h"
#include "obs/scoped_timer.h"

namespace esharing::exec {

namespace {

struct PoolMetrics {
  obs::Gauge& threads;
  obs::Gauge& queue_depth;
  obs::Counter& tasks;
  obs::Counter& steals;
  obs::Counter& parallel_fors;
  obs::Counter& chunks;
  obs::Histogram& parallel_for_seconds;

  static PoolMetrics& get() {
    static PoolMetrics m{
        obs::Registry::global().gauge("exec.pool.threads"),
        obs::Registry::global().gauge("exec.pool.queue_depth"),
        obs::Registry::global().counter("exec.pool.tasks"),
        obs::Registry::global().counter("exec.pool.steals"),
        obs::Registry::global().counter("exec.pool.parallel_fors"),
        obs::Registry::global().counter("exec.pool.chunks"),
        obs::Registry::global().histogram("exec.parallel_for.seconds"),
    };
    return m;
  }
};

/// Set while a thread is executing pool tasks; nested parallel regions on
/// such a thread run inline instead of fanning out again.
thread_local bool tl_on_pool_thread = false;

}  // namespace

bool ThreadPool::on_pool_thread() { return tl_on_pool_thread; }

ThreadPool::ThreadPool(std::size_t num_threads) {
  const std::size_t w = std::max<std::size_t>(num_threads, 1);
  // Resolve the metric handles before spawning anything: this pins the obs
  // registry's construction (and therefore destruction) order relative to
  // the pool, so worker-exit instrumentation can never outlive it.
  PoolMetrics& metrics = PoolMetrics::get();
  if (obs::enabled()) metrics.threads.set(static_cast<double>(w));
  queues_.reserve(w);
  for (std::size_t i = 0; i < w; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(w);
  for (std::size_t i = 0; i < w; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    // Empty critical section pairs with the check-then-wait in
    // worker_loop: a worker between its predicate check and the wait()
    // cannot miss the stop signal.
    const es::LockGuard lock(sleep_mu_);
  }
  wake_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (!task) throw std::invalid_argument("ThreadPool::submit: empty task");
  const std::size_t slot =
      static_cast<std::size_t>(rr_.fetch_add(1, std::memory_order_relaxed)) %
      queues_.size();
  {
    const es::LockGuard lock(queues_[slot]->mu);
    queues_[slot]->tasks.push_back(std::move(task));
  }
  const std::size_t depth = queued_.fetch_add(1, std::memory_order_release) + 1;
  if (obs::enabled()) {
    PoolMetrics::get().queue_depth.set(static_cast<double>(depth));
  }
  {
    const es::LockGuard lock(sleep_mu_);
  }
  wake_.notify_one();
}

std::function<void()> ThreadPool::take_task(std::size_t self) {
  {
    Queue& own = *queues_[self];
    const es::LockGuard lock(own.mu);
    if (!own.tasks.empty()) {
      std::function<void()> task = std::move(own.tasks.front());
      own.tasks.pop_front();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      return task;
    }
  }
  // Steal from the BACK of a sibling's deque (the owner pops the front):
  // oldest submissions migrate to idle workers first.
  for (std::size_t hop = 1; hop < queues_.size(); ++hop) {
    Queue& victim = *queues_[(self + hop) % queues_.size()];
    const es::LockGuard lock(victim.mu);
    if (!victim.tasks.empty()) {
      std::function<void()> task = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      if (obs::enabled()) PoolMetrics::get().steals.add();
      return task;
    }
  }
  return {};
}

void ThreadPool::worker_loop(std::size_t self) {
  tl_on_pool_thread = true;
  while (true) {
    if (std::function<void()> task = take_task(self)) {
      if (obs::enabled()) PoolMetrics::get().tasks.add();
      task();
      continue;
    }
    es::UniqueLock lock(sleep_mu_);
    while (!stop_.load(std::memory_order_acquire) &&
           queued_.load(std::memory_order_acquire) == 0) {
      wake_.wait(lock);
    }
    if (stop_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;  // drained: every pushed task was taken and run
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn,
    std::size_t width) {
  if (n == 0) return;
  const std::size_t g = grain == 0 ? 1 : grain;
  const std::size_t nchunks = (n + g - 1) / g;
  const obs::ScopedTimer timer(PoolMetrics::get().parallel_for_seconds);
  if (obs::enabled()) {
    PoolMetrics::get().parallel_fors.add();
    PoolMetrics::get().chunks.add(nchunks);
  }
  std::size_t lanes = width == 0 ? size() : width;
  lanes = std::min(std::max<std::size_t>(lanes, 1), nchunks);

  if (lanes <= 1 || tl_on_pool_thread) {
    // Sequential (or nested-on-a-worker) path: same chunk boundaries, same
    // per-chunk invocations, ascending order.
    for (std::size_t c = 0; c < nchunks; ++c) {
      const std::size_t b = c * g;
      fn(b, std::min(n, b + g), c);
    }
    return;
  }

  struct State {
    std::atomic<std::size_t> cursor{0};
    std::atomic<std::size_t> live{0};  ///< submitted runner tasks in flight
    es::Mutex mu;
    es::CondVar done;
    std::exception_ptr error ES_GUARDED_BY(mu);
  };
  auto state = std::make_shared<State>();
  auto run_lane = [this, n, g, nchunks, &fn, state_raw = state.get()] {
    while (true) {
      const std::size_t c =
          state_raw->cursor.fetch_add(1, std::memory_order_relaxed);
      if (c >= nchunks) break;
      const std::size_t b = c * g;
      try {
        fn(b, std::min(n, b + g), c);
      } catch (...) {
        const es::LockGuard lock(state_raw->mu);
        if (!state_raw->error) state_raw->error = std::current_exception();
      }
    }
    static_cast<void>(this);
  };

  // lanes - 1 runners on the pool; the caller is lane 0 and claims chunks
  // from the same cursor, so it always contributes instead of just waiting.
  const std::size_t runners = lanes - 1;
  state->live.store(runners, std::memory_order_relaxed);
  for (std::size_t r = 0; r < runners; ++r) {
    submit([state, run_lane] {
      run_lane();
      if (state->live.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        {
          const es::LockGuard lock(state->mu);
        }
        state->done.notify_all();
      }
    });
  }
  run_lane();
  {
    es::UniqueLock lock(state->mu);
    while (state->live.load(std::memory_order_acquire) != 0) {
      state->done.wait(lock);
    }
    if (state->error) std::rethrow_exception(state->error);
  }
}

std::size_t width_from_env_value(const char* value, std::size_t fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  // Digits only: strtoul would happily wrap "-2" into a huge width.
  for (const char* p = value; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return fallback;
  }
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(value, &end, 10);
  if (end == value || *end != '\0' || parsed == 0) return fallback;
  return static_cast<std::size_t>(parsed);
}

namespace {

struct GlobalHolder {
  es::Mutex mu;
  std::shared_ptr<ThreadPool> pool ES_GUARDED_BY(mu);
  std::size_t width ES_GUARDED_BY(mu){0};  ///< 0 = not resolved yet
};

GlobalHolder& holder() {
  static GlobalHolder h;
  return h;
}

std::size_t default_width() {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return width_from_env_value(std::getenv("ESHARING_THREADS"), hw);
}

}  // namespace

std::shared_ptr<ThreadPool> global_pool() {
  GlobalHolder& h = holder();
  const es::LockGuard lock(h.mu);
  if (!h.pool) {
    if (h.width == 0) h.width = default_width();
    h.pool = std::make_shared<ThreadPool>(h.width);
  }
  return h.pool;
}

void set_global_threads(std::size_t n) {
  if (n == 0) {
    throw std::invalid_argument("set_global_threads: width must be >= 1");
  }
  GlobalHolder& h = holder();
  std::shared_ptr<ThreadPool> old;
  {
    const es::LockGuard lock(h.mu);
    old = std::move(h.pool);
    h.width = n;
    h.pool = std::make_shared<ThreadPool>(n);
  }
  // `old` drains and joins here (or when its last in-flight user lets go).
}

std::size_t global_threads() {
  GlobalHolder& h = holder();
  const es::LockGuard lock(h.mu);
  if (h.width == 0) h.width = default_width();
  return h.width;
}

std::size_t resolve_width(std::size_t requested) {
  return requested == 0 ? global_threads() : requested;
}

void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t,
                                           std::size_t)>& fn,
                  std::size_t width) {
  if (n == 0) return;
  global_pool()->parallel_for(n, grain, fn, width);
}

}  // namespace esharing::exec
