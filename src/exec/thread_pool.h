#pragma once

/// \file thread_pool.h
/// The shared execution runtime: one persistent, process-wide work-stealing
/// thread pool behind every parallel region in the repo. Before this layer
/// each threaded solver call spawned and joined fresh std::threads
/// (solver/parallel.h), paying thread start-up latency on every inner-loop
/// iteration; the pool starts its workers once (lazily, on first use) and
/// reuses them for the lifetime of the process. Raw std::thread is banned
/// outside src/exec/ (tools/lint rule `raw-thread`) so this file is the
/// single place threads are born.
///
/// Determinism contract (DESIGN.md "Execution runtime"): work is split into
/// contiguous chunks whose boundaries depend ONLY on (n, grain) — never on
/// the pool width, the number of runners, or which worker executes which
/// chunk. parallel_for writes are per-index/per-chunk, and parallel_reduce
/// combines per-chunk results in ascending chunk order on the calling
/// thread. Together these make every result bit-identical for every thread
/// count, which is what lets SolveOptions::num_threads promise "outputs are
/// identical for any value" on top of a dynamic scheduler.
///
/// Scheduling: each worker owns a deque guarded by its own es::Mutex;
/// submitted tasks are distributed round-robin, owners pop from the front,
/// idle workers steal from the back of a sibling's deque. Inside a
/// parallel region the chunks themselves are claimed from a shared atomic
/// cursor (self-scheduling), so load imbalance between chunks never idles
/// a lane. The calling thread always participates as lane 0.
///
/// Nesting: a parallel_for/parallel_reduce issued from inside a pool task
/// runs entirely inline on that worker (documented serialization rule) —
/// fan-out from a fan-out cannot deadlock the pool.
///
/// Width resolution: the global pool is sized from ESHARING_THREADS (env)
/// when set to a positive integer, else std::thread::hardware_concurrency.
/// set_global_threads(n) replaces the pool programmatically; live callers
/// finish on the old pool (shared ownership), new calls land on the new
/// one.

#include <atomic>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>  // lint-ok: raw-thread src/exec owns all thread spawning
#include <vector>

#include "core/sync.h"
#include "core/thread_annotations.h"

namespace esharing::exec {

class ThreadPool {
 public:
  /// Start `num_threads` persistent workers (at least one). Prefer the
  /// process-wide pool (global()/parallel_for below) outside tests.
  explicit ThreadPool(std::size_t num_threads);

  /// Drains every queued task (runs it), then joins the workers. Safe to
  /// destroy with fire-and-forget submissions still outstanding.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (the pool's width).
  [[nodiscard]] std::size_t size() const { return queues_.size(); }

  /// Fire-and-forget task. Round-robined onto a worker deque; idle workers
  /// steal it if its owner is busy. Exceptions escaping `task` terminate
  /// (wrap them yourself) — parallel_for/parallel_reduce DO capture and
  /// rethrow, use those for fallible work.
  void submit(std::function<void()> task);

  /// Invoke fn(begin, end, chunk) over contiguous chunks covering [0, n).
  /// Chunk boundaries are ceil-division by `grain` (>= 1) and depend only
  /// on (n, grain): chunk c covers [c*grain, min(n, (c+1)*grain)). Chunks
  /// are claimed dynamically by up to `width` lanes (0 = pool width; the
  /// caller is always one lane), so fn must only write per-index or
  /// per-chunk state. Runs inline when n fits one chunk, width <= 1, or
  /// the caller is already a pool worker. The first exception thrown by fn
  /// is rethrown on the caller after all lanes finish.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t,
                                             std::size_t)>& fn,
                    std::size_t width = 0);

  /// Deterministic chunked reduction: map(begin, end) produces one T per
  /// chunk (chunking exactly as parallel_for), and the caller folds
  /// combine(acc, chunk_result) in ASCENDING CHUNK ORDER starting from
  /// `init`. The fold order is fixed by chunk index — never by completion
  /// order — so the result is bit-identical for every width, including
  /// non-associative floating-point combines.
  template <typename T, typename Map, typename Combine>
  T parallel_reduce(std::size_t n, std::size_t grain, T init, const Map& map,
                    const Combine& combine, std::size_t width = 0) {
    if (n == 0) return init;
    const std::size_t g = grain == 0 ? 1 : grain;
    const std::size_t nchunks = (n + g - 1) / g;
    std::vector<T> results(nchunks);
    parallel_for(
        n, g,
        [&](std::size_t b, std::size_t e, std::size_t c) {
          results[c] = map(b, e);
        },
        width);
    T acc = std::move(init);
    for (std::size_t c = 0; c < nchunks; ++c) {
      acc = combine(std::move(acc), std::move(results[c]));
    }
    return acc;
  }

  /// True on a thread currently executing a task of any ThreadPool (used
  /// to serialize nested parallel regions).
  [[nodiscard]] static bool on_pool_thread();

 private:
  struct Queue {
    es::Mutex mu;
    std::deque<std::function<void()>> tasks ES_GUARDED_BY(mu);
  };

  /// Pop from own front / steal from sibling backs. Returns an empty
  /// function when every deque is empty.
  std::function<void()> take_task(std::size_t self);
  void worker_loop(std::size_t self);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;  // lint-ok: raw-thread pool-owned workers
  mutable es::Mutex sleep_mu_;
  es::CondVar wake_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> queued_{0};  ///< tasks pushed, not yet taken
  std::atomic<std::uint64_t> rr_{0};    ///< round-robin submission cursor
};

/// The lazily-started process-wide pool. Width: ESHARING_THREADS when set
/// to a positive integer, else hardware concurrency (min 1).
[[nodiscard]] std::shared_ptr<ThreadPool> global_pool();

/// Replace the global pool with one of `n` workers (n >= 1). In-flight
/// regions finish on the pool they started on; subsequent calls use the
/// new width. Mainly for benches and width-sweep tests.
void set_global_threads(std::size_t n);

/// The width the global pool has (or would lazily start with).
[[nodiscard]] std::size_t global_threads();

/// Resolve an effective lane count: 0 means "global pool width".
[[nodiscard]] std::size_t resolve_width(std::size_t requested);

/// ESHARING_THREADS parsing, exposed for unit tests: positive integers
/// win; empty/garbage/non-positive values fall back to `fallback`.
[[nodiscard]] std::size_t width_from_env_value(const char* value,
                                               std::size_t fallback);

/// parallel_for on the global pool. See ThreadPool::parallel_for.
void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t,
                                           std::size_t)>& fn,
                  std::size_t width = 0);

/// parallel_reduce on the global pool. See ThreadPool::parallel_reduce.
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t n, std::size_t grain, T init, const Map& map,
                  const Combine& combine, std::size_t width = 0) {
  return global_pool()->parallel_reduce(n, grain, std::move(init), map,
                                        combine, width);
}

}  // namespace esharing::exec
