#pragma once

/// \file jms_greedy.h
/// The paper's offline placement algorithm (Algorithm 1): the 1.61-factor
/// greedy of Jain, Mahdian, Markakis, Saberi and Vazirani [JACM 2003],
/// applied to the PLP instance. In each iteration the algorithm picks the
/// "star" (facility i, set B of unconnected clients) with minimum average
/// cost
///
///   ( f_i + sum_{j in B} c_ij - sum_{j already connected} (c_{i'j} - c_ij)+ )
///     / |B|
///
/// where already-connected clients may switch to i whenever that lowers
/// their connection cost (the switching gain offsets i's price, and an
/// already-open facility has f_i = 0 for subsequent stars). Iterations stop
/// once every client is connected.
///
/// Costs come from a CostOracle: each facility's cost row and (cost,
/// client) ordering are materialized once instead of being recomputed and
/// re-sorted every iteration, dropping the per-iteration work from
/// O(F * C log C) to O(F * C). Star evaluation can optionally be
/// partitioned across threads; the winning star is reduced by the
/// lexicographic (ratio, facility, prefix-size) minimum, which equals the
/// sequential first-strict-minimum scan, so results are bit-identical for
/// every num_threads value (see solver::reference for the frozen baseline).

#include <cstddef>
#include <vector>

#include "solver/cost_oracle.h"
#include "solver/facility_location.h"

namespace esharing::solver {

struct JmsOptions {
  /// Lanes on the exec pool for the per-facility star scan: 0 = the
  /// process-wide pool width (ESHARING_THREADS), 1 = fully sequential on
  /// the caller, n = n lanes. Outputs are identical for any value.
  std::size_t num_threads{1};
};

/// Solve an instance with the JMS greedy.
/// \throws std::invalid_argument on invalid instances.
[[nodiscard]] FlSolution jms_greedy(const FlInstance& instance,
                                    const JmsOptions& options);
[[nodiscard]] FlSolution jms_greedy(const FlInstance& instance);

/// Run against an existing oracle (shared with other solver passes).
[[nodiscard]] FlSolution jms_greedy(const CostOracle& oracle,
                                    const JmsOptions& options = {});

/// Warm-started greedy: the facilities in `seed_open` start the run
/// already open (their opening cost is sunk up front, so early stars see
/// f_i = 0 for them), which steers the scan toward the previous epoch's
/// plan when demand has only drifted. Seeded facilities that end the run
/// with no clients are pruned like any other, so the result is still a
/// valid, tightened solution; with an empty seed this is exactly
/// jms_greedy. Warm results are NOT guaranteed cheaper than cold ones —
/// the never-worse re-solve contract lives in ReoptimizationSession,
/// which compares candidates against the carried-over baseline.
/// \throws std::invalid_argument if a seed index is out of range.
[[nodiscard]] FlSolution jms_greedy_warm(
    const CostOracle& oracle, const std::vector<std::size_t>& seed_open,
    const JmsOptions& options = {});

}  // namespace esharing::solver
