#pragma once

/// \file jms_greedy.h
/// The paper's offline placement algorithm (Algorithm 1): the 1.61-factor
/// greedy of Jain, Mahdian, Markakis, Saberi and Vazirani [JACM 2003],
/// applied to the PLP instance. In each iteration the algorithm picks the
/// "star" (facility i, set B of unconnected clients) with minimum average
/// cost
///
///   ( f_i + sum_{j in B} c_ij - sum_{j already connected} (c_{i'j} - c_ij)+ )
///     / |B|
///
/// where already-connected clients may switch to i whenever that lowers
/// their connection cost (the switching gain offsets i's price, and an
/// already-open facility has f_i = 0 for subsequent stars). Iterations stop
/// once every client is connected. Complexity O(iterations * F * C log C),
/// bounded by the paper's O(N^3) on colocated instances.

#include "solver/facility_location.h"

namespace esharing::solver {

/// Solve an instance with the JMS greedy.
/// \throws std::invalid_argument on invalid instances.
[[nodiscard]] FlSolution jms_greedy(const FlInstance& instance);

}  // namespace esharing::solver
