#pragma once

/// \file k_median.h
/// The k-median variant of the placement problem: open exactly k parkings
/// minimizing total (weighted) walking cost, with no per-facility opening
/// charge — the formulation used when the municipality fixes the station
/// budget outright instead of pricing public space. The paper's reference
/// [22] (Jain & Vazirani) treats facility location and k-median with the
/// same machinery; here we provide the standard toolbox: greedy seeding
/// (k-means++-style but on medians), Lloyd-style reassignment restricted
/// to candidate sites, and single-swap local search (Arya et al.'s
/// 5-approximation).

#include <cstdint>

#include "solver/facility_location.h"

namespace esharing::solver {

struct KMedianOptions {
  std::size_t max_swap_rounds{200};
  double min_improvement{1e-9};
};

/// Solve k-median over the instance's facility sites (opening costs are
/// ignored; the returned solution's opening_cost is 0).
/// \throws std::invalid_argument if k == 0 or k > #facilities.
[[nodiscard]] FlSolution k_median(const FlInstance& instance, std::size_t k,
                                  std::uint64_t seed,
                                  const KMedianOptions& options = {});

}  // namespace esharing::solver
