#include "solver/reopt.h"

#include <stdexcept>
#include <utility>

#include "obs/registry.h"
#include "obs/scoped_timer.h"
#include "solver/jms_greedy.h"
#include "solver/local_search.h"

namespace esharing::solver {

namespace {

struct ReoptMetrics {
  obs::Counter& epochs;
  obs::Counter& zero_delta_hits;
  obs::Counter& warm_solves;
  obs::Counter& cold_solves;
  obs::Histogram& resolve_seconds;

  static ReoptMetrics& get() {
    static ReoptMetrics m{
        obs::Registry::global().counter("solver.reopt.epochs"),
        obs::Registry::global().counter("solver.reopt.zero_delta_hits"),
        obs::Registry::global().counter("solver.reopt.warm_solves"),
        obs::Registry::global().counter("solver.reopt.cold_solves"),
        obs::Registry::global().histogram("solver.reopt.resolve_seconds"),
    };
    return m;
  }
};

}  // namespace

ReoptimizationSession::ReoptimizationSession(
    FlInstance instance, ReoptOptions options,
    std::function<double(geo::Point)> opening_cost)
    : options_(options),
      opening_cost_(std::move(opening_cost)),
      instance_(std::move(instance)),
      oracle_(instance_) {
  instance_.validate();
  last_ = jms_greedy(oracle_, JmsOptions{options_.num_threads});
  stats_.baseline_cost = last_.total_cost();
  stats_.final_cost = last_.total_cost();
  stats_.cold = true;
}

ReoptimizationSession::ReoptimizationSession(
    FromStateTag, FlInstance instance, FlSolution last, ReoptOptions options,
    std::function<double(geo::Point)> opening_cost)
    : options_(options),
      opening_cost_(std::move(opening_cost)),
      instance_(std::move(instance)),
      oracle_(instance_) {
  instance_.validate();
  last_ = std::move(last);
  stats_.baseline_cost = last_.total_cost();
  stats_.final_cost = last_.total_cost();
}

std::unique_ptr<ReoptimizationSession> ReoptimizationSession::from_state(
    FlInstance instance, FlSolution last, ReoptOptions options,
    std::function<double(geo::Point)> opening_cost) {
  if (last.assignment.size() != instance.clients.size()) {
    throw std::invalid_argument(
        "ReoptimizationSession::from_state: solution assigns " +
        std::to_string(last.assignment.size()) + " clients, the instance has " +
        std::to_string(instance.clients.size()));
  }
  if (last.open.empty()) {
    throw std::invalid_argument(
        "ReoptimizationSession::from_state: solution opens no facility");
  }
  for (std::size_t f : last.open) {
    if (f >= instance.facilities.size()) {
      throw std::invalid_argument(
          "ReoptimizationSession::from_state: open facility index " +
          std::to_string(f) + " out of range");
    }
  }
  for (std::size_t f : last.assignment) {
    if (f >= instance.facilities.size()) {
      throw std::invalid_argument(
          "ReoptimizationSession::from_state: assignment index " +
          std::to_string(f) + " out of range");
    }
  }
  return std::unique_ptr<ReoptimizationSession>(new ReoptimizationSession(
      FromStateTag{}, std::move(instance), std::move(last), options,
      std::move(opening_cost)));
}

const FlSolution& ReoptimizationSession::reoptimize(const InstanceDelta& delta) {
  if (delta.empty()) {
    // Zero-delta contract: the cached solution, bit-identically, with no
    // instance/oracle/row work at all.
    stats_ = ReoptStats{.zero_delta = true,
                        .baseline_cost = last_.total_cost(),
                        .final_cost = last_.total_cost()};
    if (obs::enabled()) ReoptMetrics::get().zero_delta_hits.add();
    return last_;
  }

  const obs::ScopedTimer timer(ReoptMetrics::get().resolve_seconds);
  apply_delta(instance_, delta);  // validates first
  oracle_.apply_delta(delta);

  stats_ = ReoptStats{};
  std::vector<std::size_t> carried = remap_open_set(last_.open, delta);
  if (carried.empty()) {
    // The delta removed every previously open facility — nothing to warm
    // from; fall back to a cold solve.
    last_ = jms_greedy(oracle_, JmsOptions{options_.num_threads});
    stats_.cold = true;
    stats_.baseline_cost = last_.total_cost();
    if (obs::enabled()) ReoptMetrics::get().cold_solves.add();
  } else {
    // "Keep yesterday's plan" is the baseline the warm re-solve must never
    // lose to; local_search's never-worse guarantee makes that structural.
    FlSolution baseline = assign_to_open(oracle_, carried);
    stats_.baseline_cost = baseline.total_cost();
    LocalSearchOptions ls;
    ls.max_iterations = options_.max_iterations;
    ls.min_improvement = options_.min_improvement;
    ls.allow_swaps = options_.allow_swaps;
    ls.num_threads = options_.num_threads;
    FlSolution best = local_search(oracle_, baseline, ls);
    if (options_.warm_jms) {
      FlSolution seeded = jms_greedy_warm(oracle_, carried,
                                          JmsOptions{options_.num_threads});
      // Strictly cheaper only: ties keep the polished baseline, so the
      // default path stays deterministic and never-worse.
      if (seeded.total_cost() < best.total_cost()) best = std::move(seeded);
    }
    last_ = std::move(best);
    if (obs::enabled()) ReoptMetrics::get().warm_solves.add();
  }
  stats_.final_cost = last_.total_cost();
  if (obs::enabled()) ReoptMetrics::get().epochs.add();
  return last_;
}

const FlSolution& ReoptimizationSession::reoptimize_to(
    const std::vector<FlClient>& target) {
  if (!opening_cost_) {
    throw std::logic_error(
        "ReoptimizationSession::reoptimize_to: constructed without an "
        "opening-cost fn — new candidate sites cannot be priced");
  }
  return reoptimize(diff_colocated(instance_, target, opening_cost_));
}

}  // namespace esharing::solver
