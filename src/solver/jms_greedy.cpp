#include "solver/jms_greedy.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "exec/thread_pool.h"
#include "obs/registry.h"
#include "obs/scoped_timer.h"

namespace esharing::solver {

namespace {

struct JmsMetrics {
  obs::Counter& solves;
  obs::Counter& iterations;
  obs::Gauge& num_threads;
  obs::Histogram& solve_seconds;

  static JmsMetrics& get() {
    static JmsMetrics m{
        obs::Registry::global().counter("solver.jms_greedy.solves"),
        obs::Registry::global().counter("solver.jms_greedy.iterations"),
        obs::Registry::global().gauge("solver.jms_greedy.num_threads"),
        obs::Registry::global().histogram("solver.jms_greedy.solve_seconds"),
    };
    return m;
  }
};

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);

struct Star {
  std::size_t facility{0};
  double ratio{kInf};
  std::size_t take{0};  ///< how many cheapest unconnected clients to connect
};

/// Strict "a wins over b" in the deterministic reduction. Scanning
/// facilities (and prefix sizes) in ascending order with this comparator
/// selects the lexicographic (ratio, facility, take) minimum — exactly the
/// candidate a sequential first-strict-minimum scan keeps.
bool better(const Star& a, const Star& b) {
  if (a.ratio != b.ratio) return a.ratio < b.ratio;
  if (a.facility != b.facility) return a.facility < b.facility;
  return a.take < b.take;
}

/// Facilities per parallel chunk. Each facility costs O(clients) row work,
/// so a small grain buys load balance without claim overhead. The grain is
/// a fixed constant — chunk boundaries (and thus the reduction) never
/// depend on the thread count.
constexpr std::size_t kFacilityGrain = 8;

/// Best star among facilities [begin, end) given the current assignment.
Star best_star_in_range(const CostOracle& oracle, std::size_t begin,
                        std::size_t end, const std::vector<bool>& open,
                        const std::vector<std::size_t>& assigned,
                        const std::vector<double>& current_cost) {
  const FlInstance& instance = oracle.instance();
  const std::size_t nc = assigned.size();
  Star best;
  for (std::size_t i = begin; i < end; ++i) {
    const double fee = open[i] ? 0.0 : instance.facilities[i].opening_cost;

    // Switching gain from already-connected clients that prefer i,
    // accumulated in client-index order (matches the reference exactly).
    const std::vector<double>& row = oracle.row(i);
    double gain = 0.0;
    for (std::size_t j = 0; j < nc; ++j) {
      if (assigned[j] != kUnassigned && row[j] < current_cost[j]) {
        gain += current_cost[j] - row[j];
      }
    }

    // Best prefix of cheapest unconnected clients: walk the cached
    // (cost, client) ordering, skipping connected clients — the same
    // sequence as sorting the unconnected set from scratch.
    const auto& sorted = oracle.sorted_row(i);
    double prefix = 0.0;
    std::size_t taken = 0;
    for (const auto& [cij, j] : sorted) {
      if (assigned[j] != kUnassigned) continue;
      prefix += cij;
      ++taken;
      const double ratio = (fee + prefix - gain) / static_cast<double>(taken);
      if (const Star cand{i, ratio, taken}; better(cand, best)) {
        best = cand;
      }
    }
  }
  return best;
}

}  // namespace

namespace {

/// Shared body of jms_greedy / jms_greedy_warm: `seed_open` facilities
/// start open (empty for the cold solve).
FlSolution jms_greedy_impl(const CostOracle& oracle,
                           const std::vector<std::size_t>& seed_open,
                           const JmsOptions& options) {
  const FlInstance& instance = oracle.instance();
  instance.validate();
  const std::size_t nf = instance.facilities.size();
  const std::size_t nc = instance.clients.size();
  // num_threads now names a pool width: 0 = the process-wide exec pool
  // width (ESHARING_THREADS), 1 = sequential, n = n lanes.
  const std::size_t threads = exec::resolve_width(options.num_threads);

  const obs::ScopedTimer timer(JmsMetrics::get().solve_seconds);
  if (obs::enabled()) {
    JmsMetrics::get().solves.add();
    JmsMetrics::get().num_threads.set(static_cast<double>(threads));
  }

  std::vector<bool> open(nf, false);
  for (std::size_t f : seed_open) {
    if (f >= nf) {
      throw std::invalid_argument(
          "jms_greedy_warm: seed facility index out of range");
    }
    open[f] = true;
  }
  std::vector<std::size_t> assigned(nc, kUnassigned);
  std::vector<double> current_cost(nc, kInf);  // connection cost of assigned
  std::size_t unconnected = nc;

  while (unconnected > 0) {
    if (obs::enabled()) JmsMetrics::get().iterations.add();
    // Chunk-ordered reduction over disjoint facility ranges on the exec
    // pool. `better` is a strict total order and each Star is computed
    // from its own facility alone, so the folded minimum is bit-identical
    // to the sequential scan at every width (and every grain).
    Star best = exec::parallel_reduce<Star>(
        nf, kFacilityGrain, Star{},
        [&](std::size_t b, std::size_t e) {
          return best_star_in_range(oracle, b, e, open, assigned,
                                    current_cost);
        },
        [](Star acc, Star s) {
          if (s.take != 0 && (acc.take == 0 || better(s, acc))) return s;
          return acc;
        },
        threads);

    if (best.take == 0) {
      // Cannot happen on a valid instance (every facility can always take
      // one client), but guard against NaN costs rather than spin forever.
      throw std::logic_error("jms_greedy: no improving star found");
    }

    // Open the winning facility, switch movable clients, connect its star.
    const std::size_t i = best.facility;
    open[i] = true;
    const std::vector<double>& row = oracle.row(i);
    for (std::size_t j = 0; j < nc; ++j) {
      if (assigned[j] != kUnassigned && row[j] < current_cost[j]) {
        assigned[j] = i;
        current_cost[j] = row[j];
      }
    }
    std::size_t taken = 0;
    for (const auto& [cij, j] : oracle.sorted_row(i)) {
      if (taken >= best.take) break;
      if (assigned[j] != kUnassigned) continue;
      assigned[j] = i;
      current_cost[j] = cij;
      ++taken;
      --unconnected;
    }
  }

  // Tighten once: every client moves to its cheapest open facility. Then
  // drop facilities that ended up with no clients (a facility can lose all
  // its clients to later stars; keeping it would pay f_i for nothing) —
  // pruning unused facilities cannot change any client's cheapest choice,
  // so the assignment and connection cost carry over without a second
  // assignment pass.
  std::vector<std::size_t> opened;
  for (std::size_t i = 0; i < nf; ++i) {
    if (open[i]) opened.push_back(i);
  }
  FlSolution tight = assign_to_open(oracle, opened);
  std::vector<bool> used(nf, false);
  for (std::size_t f : tight.assignment) used[f] = true;
  std::vector<std::size_t> pruned;
  for (std::size_t f : tight.open) {
    if (used[f]) pruned.push_back(f);
  }
  if (pruned.size() == tight.open.size()) return tight;

  FlSolution sol;
  sol.assignment = std::move(tight.assignment);
  sol.connection_cost = tight.connection_cost;
  for (std::size_t f : pruned) {
    sol.opening_cost += instance.facilities[f].opening_cost;
  }
  sol.open = std::move(pruned);
  return sol;
}

}  // namespace

FlSolution jms_greedy(const CostOracle& oracle, const JmsOptions& options) {
  return jms_greedy_impl(oracle, {}, options);
}

FlSolution jms_greedy_warm(const CostOracle& oracle,
                           const std::vector<std::size_t>& seed_open,
                           const JmsOptions& options) {
  return jms_greedy_impl(oracle, seed_open, options);
}

FlSolution jms_greedy(const FlInstance& instance, const JmsOptions& options) {
  instance.validate();
  const CostOracle oracle(instance);
  return jms_greedy(oracle, options);
}

FlSolution jms_greedy(const FlInstance& instance) {
  return jms_greedy(instance, JmsOptions{});
}

}  // namespace esharing::solver
