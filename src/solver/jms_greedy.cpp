#include "solver/jms_greedy.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace esharing::solver {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);

struct Star {
  std::size_t facility{0};
  double ratio{kInf};
  std::size_t take{0};  ///< how many cheapest unconnected clients to connect
};

}  // namespace

FlSolution jms_greedy(const FlInstance& instance) {
  instance.validate();
  const std::size_t nf = instance.facilities.size();
  const std::size_t nc = instance.clients.size();

  std::vector<bool> open(nf, false);
  std::vector<std::size_t> assigned(nc, kUnassigned);
  std::vector<double> current_cost(nc, kInf);  // connection cost of assigned
  std::size_t unconnected = nc;

  // Scratch: per facility, unconnected clients sorted by connection cost.
  std::vector<std::pair<double, std::size_t>> costs;
  costs.reserve(nc);

  while (unconnected > 0) {
    Star best;
    for (std::size_t i = 0; i < nf; ++i) {
      const double fee = open[i] ? 0.0 : instance.facilities[i].opening_cost;

      // Switching gain from already-connected clients that prefer i.
      double gain = 0.0;
      costs.clear();
      for (std::size_t j = 0; j < nc; ++j) {
        const double cij = instance.connection_cost(i, j);
        if (assigned[j] == kUnassigned) {
          costs.emplace_back(cij, j);
        } else if (cij < current_cost[j]) {
          gain += current_cost[j] - cij;
        }
      }
      std::sort(costs.begin(), costs.end());

      // Best prefix of cheapest unconnected clients for this facility.
      double prefix = 0.0;
      for (std::size_t k = 0; k < costs.size(); ++k) {
        prefix += costs[k].first;
        const double ratio = (fee + prefix - gain) / static_cast<double>(k + 1);
        if (ratio < best.ratio) {
          best = {i, ratio, k + 1};
        }
      }
    }

    if (best.take == 0) {
      // Cannot happen on a valid instance (every facility can always take
      // one client), but guard against NaN costs rather than spin forever.
      throw std::logic_error("jms_greedy: no improving star found");
    }

    // Open the winning facility, connect its star, switch movable clients.
    const std::size_t i = best.facility;
    open[i] = true;
    costs.clear();
    for (std::size_t j = 0; j < nc; ++j) {
      const double cij = instance.connection_cost(i, j);
      if (assigned[j] == kUnassigned) {
        costs.emplace_back(cij, j);
      } else if (cij < current_cost[j]) {
        assigned[j] = i;
        current_cost[j] = cij;
      }
    }
    std::sort(costs.begin(), costs.end());
    for (std::size_t k = 0; k < best.take && k < costs.size(); ++k) {
      const std::size_t j = costs[k].second;
      assigned[j] = i;
      current_cost[j] = costs[k].first;
      --unconnected;
    }
  }

  FlSolution sol;
  for (std::size_t i = 0; i < nf; ++i) {
    if (open[i]) sol.open.push_back(i);
  }
  sol.assignment = std::move(assigned);
  // Final tightening: every client moves to its cheapest open facility (the
  // greedy already keeps this invariant, recost() also re-checks indices).
  FlSolution tight = assign_to_open(instance, sol.open);

  // Drop facilities that ended up with no clients and zero benefit: a
  // facility can lose all its clients to later stars; keeping it would pay
  // f_i for nothing.
  std::vector<bool> used(nf, false);
  for (std::size_t f : tight.assignment) used[f] = true;
  std::vector<std::size_t> pruned;
  for (std::size_t f : tight.open) {
    if (used[f]) pruned.push_back(f);
  }
  return assign_to_open(instance, pruned);
}

}  // namespace esharing::solver
