#include "solver/reference.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "stats/rng.h"

namespace esharing::solver::reference {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);

struct Star {
  std::size_t facility{0};
  double ratio{kInf};
  std::size_t take{0};
};

/// Pre-refactor local-search evaluation over an eager cost matrix.
double evaluate(const FlInstance& inst,
                const std::vector<std::vector<double>>& cost,
                const std::vector<bool>& open) {
  double total = 0.0;
  bool any = false;
  for (std::size_t i = 0; i < open.size(); ++i) {
    if (open[i]) {
      any = true;
      total += inst.facilities[i].opening_cost;
    }
  }
  if (!any) return kInf;
  for (std::size_t j = 0; j < inst.clients.size(); ++j) {
    double best = kInf;
    for (std::size_t i = 0; i < open.size(); ++i) {
      if (open[i]) best = std::min(best, cost[i][j]);
    }
    total += best;
  }
  return total;
}

double connection_total(const std::vector<std::vector<double>>& cost,
                        const std::vector<std::size_t>& open,
                        std::size_t nc) {
  double total = 0.0;
  for (std::size_t j = 0; j < nc; ++j) {
    double best = kInf;
    for (std::size_t i : open) best = std::min(best, cost[i][j]);
    total += best;
  }
  return total;
}

}  // namespace

FlSolution jms_greedy(const FlInstance& instance) {
  instance.validate();
  const std::size_t nf = instance.facilities.size();
  const std::size_t nc = instance.clients.size();

  std::vector<bool> open(nf, false);
  std::vector<std::size_t> assigned(nc, kUnassigned);
  std::vector<double> current_cost(nc, kInf);
  std::size_t unconnected = nc;

  std::vector<std::pair<double, std::size_t>> costs;
  costs.reserve(nc);

  while (unconnected > 0) {
    Star best;
    for (std::size_t i = 0; i < nf; ++i) {
      const double fee = open[i] ? 0.0 : instance.facilities[i].opening_cost;

      double gain = 0.0;
      costs.clear();
      for (std::size_t j = 0; j < nc; ++j) {
        const double cij = instance.connection_cost(i, j);
        if (assigned[j] == kUnassigned) {
          costs.emplace_back(cij, j);
        } else if (cij < current_cost[j]) {
          gain += current_cost[j] - cij;
        }
      }
      std::sort(costs.begin(), costs.end());

      double prefix = 0.0;
      for (std::size_t k = 0; k < costs.size(); ++k) {
        prefix += costs[k].first;
        const double ratio = (fee + prefix - gain) / static_cast<double>(k + 1);
        if (ratio < best.ratio) {
          best = {i, ratio, k + 1};
        }
      }
    }

    if (best.take == 0) {
      throw std::logic_error("jms_greedy: no improving star found");
    }

    const std::size_t i = best.facility;
    open[i] = true;
    costs.clear();
    for (std::size_t j = 0; j < nc; ++j) {
      const double cij = instance.connection_cost(i, j);
      if (assigned[j] == kUnassigned) {
        costs.emplace_back(cij, j);
      } else if (cij < current_cost[j]) {
        assigned[j] = i;
        current_cost[j] = cij;
      }
    }
    std::sort(costs.begin(), costs.end());
    for (std::size_t k = 0; k < best.take && k < costs.size(); ++k) {
      const std::size_t j = costs[k].second;
      assigned[j] = i;
      current_cost[j] = costs[k].first;
      --unconnected;
    }
  }

  FlSolution sol;
  for (std::size_t i = 0; i < nf; ++i) {
    if (open[i]) sol.open.push_back(i);
  }
  sol.assignment = std::move(assigned);
  FlSolution tight = assign_to_open(instance, sol.open);

  std::vector<bool> used(nf, false);
  for (std::size_t f : tight.assignment) used[f] = true;
  std::vector<std::size_t> pruned;
  for (std::size_t f : tight.open) {
    if (used[f]) pruned.push_back(f);
  }
  return assign_to_open(instance, pruned);
}

FlSolution local_search(const FlInstance& instance, const FlSolution& initial,
                        const LocalSearchOptions& options) {
  instance.validate();
  if (initial.open.empty()) {
    throw std::invalid_argument("local_search: empty initial open set");
  }
  const std::size_t nf = instance.facilities.size();
  const std::size_t nc = instance.clients.size();
  std::vector<std::vector<double>> cost(nf, std::vector<double>(nc));
  for (std::size_t i = 0; i < nf; ++i) {
    for (std::size_t j = 0; j < nc; ++j) {
      cost[i][j] = instance.connection_cost(i, j);
    }
  }

  std::vector<bool> open(nf, false);
  for (std::size_t i : initial.open) {
    if (i >= nf) {
      throw std::invalid_argument("local_search: facility index out of range");
    }
    open[i] = true;
  }
  double current = evaluate(instance, cost, open);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    double best = current;
    std::size_t best_open = nf, best_close = nf;

    for (std::size_t i = 0; i < nf; ++i) {
      if (open[i]) continue;
      open[i] = true;
      const double c = evaluate(instance, cost, open);
      open[i] = false;
      if (c < best - options.min_improvement) {
        best = c;
        best_open = i;
        best_close = nf;
      }
    }
    for (std::size_t i = 0; i < nf; ++i) {
      if (!open[i]) continue;
      open[i] = false;
      const double c = evaluate(instance, cost, open);
      open[i] = true;
      if (c < best - options.min_improvement) {
        best = c;
        best_open = nf;
        best_close = i;
      }
    }
    if (options.allow_swaps) {
      for (std::size_t out = 0; out < nf; ++out) {
        if (!open[out]) continue;
        open[out] = false;
        for (std::size_t in = 0; in < nf; ++in) {
          if (open[in] || in == out) continue;
          open[in] = true;
          const double c = evaluate(instance, cost, open);
          open[in] = false;
          if (c < best - options.min_improvement) {
            best = c;
            best_open = in;
            best_close = out;
          }
        }
        open[out] = true;
      }
    }

    if (best >= current - options.min_improvement) break;
    if (best_open < nf) open[best_open] = true;
    if (best_close < nf) open[best_close] = false;
    current = best;
  }

  std::vector<std::size_t> open_set;
  for (std::size_t i = 0; i < nf; ++i) {
    if (open[i]) open_set.push_back(i);
  }
  return assign_to_open(instance, open_set);
}

FlSolution k_median(const FlInstance& instance, std::size_t k,
                    std::uint64_t seed, const KMedianOptions& options) {
  instance.validate();
  const std::size_t nf = instance.facilities.size();
  const std::size_t nc = instance.clients.size();
  if (k == 0 || k > nf) {
    throw std::invalid_argument("k_median: k outside [1, #facilities]");
  }
  std::vector<std::vector<double>> cost(nf, std::vector<double>(nc));
  for (std::size_t i = 0; i < nf; ++i) {
    for (std::size_t j = 0; j < nc; ++j) {
      cost[i][j] = instance.connection_cost(i, j);
    }
  }

  stats::Rng rng(seed);
  std::vector<std::size_t> open{rng.index(nf)};
  std::vector<bool> is_open(nf, false);
  is_open[open[0]] = true;
  while (open.size() < k) {
    double best_gain = -kInf;
    std::size_t best_i = nf;
    const double base = connection_total(cost, open, nc);
    for (std::size_t i = 0; i < nf; ++i) {
      if (is_open[i]) continue;
      open.push_back(i);
      const double gain = base - connection_total(cost, open, nc);
      open.pop_back();
      if (gain > best_gain) {
        best_gain = gain;
        best_i = i;
      }
    }
    open.push_back(best_i);
    is_open[best_i] = true;
  }

  double current = connection_total(cost, open, nc);
  for (std::size_t round = 0; round < options.max_swap_rounds; ++round) {
    double best = current;
    std::size_t best_slot = open.size(), best_in = nf;
    for (std::size_t slot = 0; slot < open.size(); ++slot) {
      const std::size_t out = open[slot];
      for (std::size_t in = 0; in < nf; ++in) {
        if (is_open[in]) continue;
        open[slot] = in;
        const double c = connection_total(cost, open, nc);
        open[slot] = out;
        if (c < best - options.min_improvement) {
          best = c;
          best_slot = slot;
          best_in = in;
        }
      }
    }
    if (best_slot == open.size()) break;
    is_open[open[best_slot]] = false;
    is_open[best_in] = true;
    open[best_slot] = best_in;
    current = best;
  }

  FlSolution sol = assign_to_open(instance, open);
  sol.opening_cost = 0.0;
  return sol;
}

}  // namespace esharing::solver::reference
