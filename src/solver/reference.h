#pragma once

/// \file reference.h
/// Frozen pre-oracle implementations of the offline solvers, kept verbatim
/// from before the CostOracle/SpatialIndex refactor. They recompute every
/// c_ij through FlInstance::connection_cost with brute-force linear scans
/// and per-iteration sorts — exactly the code the production solvers
/// replaced — and serve two purposes:
///
///   * regression oracles: tests assert the refactored solvers return
///     bit-identical open sets, assignments and costs on seeded instances;
///   * bench baselines: bench_micro_perf times oracle vs. reference JMS.
///
/// Do not "improve" these: their value is being the old behavior.

#include <cstdint>

#include "solver/facility_location.h"
#include "solver/k_median.h"
#include "solver/local_search.h"

namespace esharing::solver::reference {

/// Pre-refactor JMS greedy (per-iteration cost recompute + full sort, and
/// the original double assign_to_open tail).
[[nodiscard]] FlSolution jms_greedy(const FlInstance& instance);

/// Pre-refactor local search (eager dense cost matrix, sequential scan).
[[nodiscard]] FlSolution local_search(const FlInstance& instance,
                                      const FlSolution& initial,
                                      const LocalSearchOptions& options = {});

/// Pre-refactor k-median (eager dense cost matrix).
[[nodiscard]] FlSolution k_median(const FlInstance& instance, std::size_t k,
                                  std::uint64_t seed,
                                  const KMedianOptions& options = {});

}  // namespace esharing::solver::reference
