#pragma once

/// \file exact.h
/// Exact facility-location solver by branch-and-bound over the open set.
/// Exponential in the number of candidate facilities — usable up to ~20
/// candidates — and intended as a test oracle: unit/property tests verify
/// that jms_greedy() stays within its 1.61 approximation factor of this
/// optimum on random small instances.

#include <cstddef>

#include "solver/facility_location.h"

namespace esharing::solver {

/// Optimal solution via branch-and-bound.
/// \param max_facilities safety cap; instances with more candidates throw.
/// \throws std::invalid_argument on invalid instances or too many candidates.
[[nodiscard]] FlSolution exact_facility_location(const FlInstance& instance,
                                                 std::size_t max_facilities = 22);

}  // namespace esharing::solver
