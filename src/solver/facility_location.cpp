#include "solver/facility_location.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace esharing::solver {

double FlInstance::connection_cost(std::size_t facility,
                                   std::size_t client) const {
  return clients[client].weight *
         geo::distance(facilities[facility].location, clients[client].location);
}

void FlInstance::validate() const {
  if (clients.empty()) throw std::invalid_argument("FlInstance: no clients");
  if (facilities.empty()) throw std::invalid_argument("FlInstance: no facilities");
  for (const auto& c : clients) {
    if (!(c.weight >= 0.0)) {
      throw std::invalid_argument("FlInstance: negative client weight");
    }
  }
  for (const auto& f : facilities) {
    if (!(f.opening_cost >= 0.0)) {
      throw std::invalid_argument("FlInstance: negative opening cost");
    }
  }
}

FlInstance colocated_instance(std::vector<FlClient> clients,
                              std::vector<double> opening_costs) {
  if (clients.size() != opening_costs.size()) {
    throw std::invalid_argument(
        "colocated_instance: clients/opening_costs size mismatch");
  }
  FlInstance inst;
  inst.facilities.reserve(clients.size());
  for (std::size_t i = 0; i < clients.size(); ++i) {
    inst.facilities.push_back({clients[i].location, opening_costs[i]});
  }
  inst.clients = std::move(clients);
  inst.validate();
  return inst;
}

FlSolution assign_to_open(const FlInstance& instance,
                          const std::vector<std::size_t>& open) {
  if (open.empty()) {
    throw std::invalid_argument("assign_to_open: empty open set");
  }
  for (std::size_t f : open) {
    if (f >= instance.facilities.size()) {
      throw std::invalid_argument("assign_to_open: facility index out of range");
    }
  }
  FlSolution sol;
  sol.open = open;
  std::sort(sol.open.begin(), sol.open.end());
  sol.open.erase(std::unique(sol.open.begin(), sol.open.end()), sol.open.end());
  sol.assignment.resize(instance.clients.size());
  for (std::size_t j = 0; j < instance.clients.size(); ++j) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_f = sol.open.front();
    for (std::size_t f : sol.open) {
      const double c = instance.connection_cost(f, j);
      if (c < best) {
        best = c;
        best_f = f;
      }
    }
    sol.assignment[j] = best_f;
    sol.connection_cost += best;
  }
  for (std::size_t f : sol.open) {
    sol.opening_cost += instance.facilities[f].opening_cost;
  }
  return sol;
}

FlSolution recost(const FlInstance& instance, FlSolution sol) {
  if (sol.assignment.size() != instance.clients.size()) {
    throw std::invalid_argument("recost: assignment size mismatch");
  }
  std::sort(sol.open.begin(), sol.open.end());
  sol.open.erase(std::unique(sol.open.begin(), sol.open.end()), sol.open.end());
  sol.connection_cost = 0.0;
  sol.opening_cost = 0.0;
  for (std::size_t j = 0; j < sol.assignment.size(); ++j) {
    const std::size_t f = sol.assignment[j];
    if (!std::binary_search(sol.open.begin(), sol.open.end(), f)) {
      throw std::invalid_argument("recost: client assigned to closed facility");
    }
    sol.connection_cost += instance.connection_cost(f, j);
  }
  for (std::size_t f : sol.open) {
    if (f >= instance.facilities.size()) {
      throw std::invalid_argument("recost: facility index out of range");
    }
    sol.opening_cost += instance.facilities[f].opening_cost;
  }
  return sol;
}

}  // namespace esharing::solver
