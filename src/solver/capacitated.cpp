#include "solver/capacitated.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace esharing::solver {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void validate(const std::vector<CapacitatedStation>& stations,
              const std::vector<CapacitatedDemand>& demands) {
  if (stations.empty()) {
    throw std::invalid_argument("assign_capacitated: no stations");
  }
  if (demands.empty()) {
    throw std::invalid_argument("assign_capacitated: no demand");
  }
  for (const auto& s : stations) {
    if (s.capacity < 0.0) {
      throw std::invalid_argument("assign_capacitated: negative capacity");
    }
  }
  for (const auto& d : demands) {
    if (d.amount < 0.0) {
      throw std::invalid_argument("assign_capacitated: negative demand");
    }
  }
}

}  // namespace

CapacitatedAssignment assign_capacitated(
    const std::vector<CapacitatedStation>& stations,
    const std::vector<CapacitatedDemand>& demands) {
  validate(stations, demands);
  std::vector<double> remaining_cap(stations.size());
  for (std::size_t s = 0; s < stations.size(); ++s) {
    remaining_cap[s] = stations[s].capacity;
  }
  std::vector<double> remaining_dem(demands.size());
  for (std::size_t d = 0; d < demands.size(); ++d) {
    remaining_dem[d] = demands[d].amount;
  }

  CapacitatedAssignment result;
  // Regret greedy: repeatedly pick the unfinished demand with the largest
  // gap between its best and second-best feasible station, and give it as
  // much of its best station as fits. Ties fall back to cheapest-first.
  while (true) {
    double best_regret = -1.0;
    std::size_t pick = demands.size();
    std::size_t pick_station = stations.size();
    for (std::size_t d = 0; d < demands.size(); ++d) {
      if (remaining_dem[d] <= 1e-12) continue;
      double best = kInf, second = kInf;
      std::size_t best_s = stations.size();
      for (std::size_t s = 0; s < stations.size(); ++s) {
        if (remaining_cap[s] <= 1e-12) continue;
        const double c = geo::distance(demands[d].location, stations[s].location);
        if (c < best) {
          second = best;
          best = c;
          best_s = s;
        } else if (c < second) {
          second = c;
        }
      }
      if (best_s == stations.size()) continue;  // no capacity anywhere
      const double regret = (second == kInf ? best : second - best);
      if (regret > best_regret) {
        best_regret = regret;
        pick = d;
        pick_station = best_s;
      }
    }
    if (pick == demands.size()) break;  // nothing assignable remains

    const double moved = std::min(remaining_dem[pick], remaining_cap[pick_station]);
    remaining_dem[pick] -= moved;
    remaining_cap[pick_station] -= moved;
    result.shares.push_back({pick, pick_station, moved});
    result.walking_cost +=
        moved * geo::distance(demands[pick].location,
                              stations[pick_station].location);
  }
  result.overflow = std::accumulate(remaining_dem.begin(), remaining_dem.end(), 0.0);
  return result;
}

double uncapacitated_walking_cost(
    const std::vector<CapacitatedStation>& stations,
    const std::vector<CapacitatedDemand>& demands) {
  validate(stations, demands);
  double total = 0.0;
  for (const auto& d : demands) {
    double best = kInf;
    for (const auto& s : stations) {
      best = std::min(best, geo::distance(d.location, s.location));
    }
    total += d.amount * best;
  }
  return total;
}

}  // namespace esharing::solver
