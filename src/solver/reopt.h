#pragma once

/// \file reopt.h
/// The incremental re-optimization engine: one `ReoptimizationSession`
/// owns {versioned FlInstance, delta-aware CostOracle, last FlSolution}
/// and turns "demand drifted since the last plan" into a warm re-solve
/// instead of a cold one. Epoch-over-epoch drift arrives either as an
/// explicit `InstanceDelta` (reoptimize) or as a full demand snapshot that
/// the session diffs against its colocated instance itself
/// (reoptimize_to, via diff_colocated) — which is how the online drivers
/// re-anchor landmarks on a cadence from stream::StreamState snapshots.
///
/// Correctness contracts (regression-tested):
///  - Zero-delta re-solve: returns the cached solution bit-identically,
///    touching neither the instance, the oracle, nor a single cost row.
///  - Never costlier than the starting point: a warm re-solve first
///    carries the previous open set across the delta (remap_open_set +
///    assign_to_open = the baseline "keep yesterday's plan" solution) and
///    only ever improves on it (local_search's never-worse guarantee; the
///    optional warm-seeded JMS candidate is taken only when strictly
///    cheaper).
///  - Bit-determinism: every ingredient (delta application, oracle
///    patching, JMS, local search) is bit-identical at every thread
///    width, so re-anchored plans are too.
///
/// The session is deliberately non-movable: the CostOracle member holds a
/// pointer to the FlInstance member. Hold it behind std::unique_ptr when
/// it must change hands (core::ESharing does).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "geo/point.h"
#include "solver/cost_oracle.h"
#include "solver/facility_location.h"
#include "solver/instance_delta.h"

namespace esharing::solver {

struct ReoptOptions {
  /// Lanes on the exec pool for the solves: 0 = process-wide pool width
  /// (ESHARING_THREADS), 1 = sequential. Outputs identical for any value.
  std::size_t num_threads{1};
  /// local_search polish controls for the warm path. Swaps are off by
  /// default: the warm polish starts from yesterday's (already good) plan,
  /// and the swap scan is the one move family whose cost rivals a cold
  /// solve — bench_warm_restart measures the trade.
  std::size_t max_iterations{1000};
  double min_improvement{1e-9};
  bool allow_swaps{false};
  /// Additionally run the warm-seeded JMS (jms_greedy_warm from the
  /// carried open set) and keep it only when strictly cheaper than the
  /// polished baseline. Costs close to a cold solve — off by default.
  bool warm_jms{false};
};

/// What the last reoptimize() call did — for bench/driver reporting.
struct ReoptStats {
  bool zero_delta{false};   ///< delta was empty; cached solution returned
  bool cold{false};         ///< carried open set died; full cold solve ran
  double baseline_cost{0.0};  ///< carried-plan cost before improvement
  double final_cost{0.0};     ///< cost of the returned solution
};

/// See the file comment. Construction performs the initial cold solve
/// (JMS), so solution() is valid immediately and bit-identical to
/// jms_greedy on the same instance.
class ReoptimizationSession {
 public:
  /// `opening_cost` prices newly appearing candidate sites in
  /// reoptimize_to; pass nullptr when only explicit-delta reoptimize is
  /// used (reoptimize_to then throws std::logic_error).
  /// \throws std::invalid_argument on an invalid instance.
  explicit ReoptimizationSession(
      FlInstance instance, ReoptOptions options = {},
      std::function<double(geo::Point)> opening_cost = nullptr);

  ReoptimizationSession(const ReoptimizationSession&) = delete;
  ReoptimizationSession& operator=(const ReoptimizationSession&) = delete;

  /// Rebuild a session from externally persisted state: the instance and
  /// last solution of a previous session (see instance()/solution() — that
  /// pair fully determines every future re-solve, so a restored session
  /// continues bit-identically to the original no matter how many deltas
  /// the original had absorbed). Skips the construction cold solve; oracle
  /// caches rebuild lazily and the revision counter restarts at 0.
  /// \throws std::invalid_argument on an invalid instance or a solution
  ///         inconsistent with it.
  [[nodiscard]] static std::unique_ptr<ReoptimizationSession> from_state(
      FlInstance instance, FlSolution last, ReoptOptions options = {},
      std::function<double(geo::Point)> opening_cost = nullptr);

  [[nodiscard]] const FlInstance& instance() const { return instance_; }
  [[nodiscard]] const CostOracle& oracle() const { return oracle_; }
  [[nodiscard]] const FlSolution& solution() const { return last_; }
  /// Instance revision = number of non-empty deltas absorbed.
  [[nodiscard]] std::uint64_t revision() const { return oracle_.revision(); }
  [[nodiscard]] const ReoptStats& last_stats() const { return stats_; }

  /// Apply `delta` to the instance + oracle and warm re-solve. An empty
  /// delta returns the cached solution bit-identically without touching
  /// anything.
  /// \throws std::invalid_argument via InstanceDelta::validate.
  const FlSolution& reoptimize(const InstanceDelta& delta);

  /// Diff the (colocated) instance against a new demand snapshot and
  /// reoptimize with the resulting delta. `target` clients are matched by
  /// exact location (see diff_colocated).
  /// \throws std::logic_error when constructed without an opening-cost fn;
  ///         std::invalid_argument if the instance is not colocated.
  const FlSolution& reoptimize_to(const std::vector<FlClient>& target);

 private:
  struct FromStateTag {};
  ReoptimizationSession(FromStateTag, FlInstance instance, FlSolution last,
                        ReoptOptions options,
                        std::function<double(geo::Point)> opening_cost);

  ReoptOptions options_;
  std::function<double(geo::Point)> opening_cost_;
  FlInstance instance_;
  CostOracle oracle_;  ///< points at instance_ — the session is immovable
  FlSolution last_;
  ReoptStats stats_;
};

}  // namespace esharing::solver
