#pragma once

/// \file meyerson.h
/// Meyerson's randomized online facility location [FOCS 2001], the online
/// baseline the paper compares against (Fig. 4, Table V). Requests arrive
/// one at a time and decisions are irrevocable: a request at point p opens
/// a new parking at p with probability min(d/f, 1), where d is the
/// (weighted) distance to the closest already-open parking; otherwise it is
/// assigned to that parking. The first request always opens.

#include <cstdint>
#include <vector>

#include "geo/point.h"
#include "geo/spatial_index.h"
#include "stats/rng.h"

namespace esharing::solver {

/// What happened to one online request.
struct OnlineDecision {
  bool opened{false};          ///< a new parking was established at the request
  std::size_t facility{0};     ///< index of the assigned parking (into facilities())
  double connection_cost{0.0}; ///< weighted walking cost paid by this request
};

/// Streaming Meyerson placer with a uniform opening cost.
class MeyersonPlacer {
 public:
  /// \param opening_cost uniform f in meters-equivalent
  /// \throws std::invalid_argument if opening_cost <= 0.
  MeyersonPlacer(double opening_cost, std::uint64_t seed);

  /// Process one request with destination `p` and arrival weight `weight`.
  OnlineDecision process(geo::Point p, double weight = 1.0);

  [[nodiscard]] const std::vector<geo::Point>& facilities() const {
    return facilities_;
  }
  [[nodiscard]] double total_connection_cost() const { return connection_cost_; }
  [[nodiscard]] double total_opening_cost() const {
    return opening_cost_ * static_cast<double>(facilities_.size());
  }
  [[nodiscard]] double total_cost() const {
    return total_connection_cost() + total_opening_cost();
  }
  [[nodiscard]] std::size_t num_open() const { return facilities_.size(); }
  [[nodiscard]] double opening_cost() const { return opening_cost_; }

 private:
  double opening_cost_;
  stats::Rng rng_;
  std::vector<geo::Point> facilities_;
  geo::SpatialIndex index_;  ///< bucketed mirror of facilities_ (same ids)
  double connection_cost_{0.0};
};

}  // namespace esharing::solver
