#include "solver/k_median.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "solver/cost_oracle.h"
#include "stats/rng.h"

namespace esharing::solver {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double connection_total(const CostOracle& oracle,
                        const std::vector<std::size_t>& open,
                        std::size_t nc) {
  // Cache the row pointers once; the min scan keeps the `open` vector
  // order of the pre-oracle implementation.
  std::vector<const std::vector<double>*> rows;
  rows.reserve(open.size());
  for (std::size_t i : open) rows.push_back(&oracle.row(i));
  double total = 0.0;
  for (std::size_t j = 0; j < nc; ++j) {
    double best = kInf;
    for (const auto* row : rows) best = std::min(best, (*row)[j]);
    total += best;
  }
  return total;
}

}  // namespace

FlSolution k_median(const FlInstance& instance, std::size_t k,
                    std::uint64_t seed, const KMedianOptions& options) {
  instance.validate();
  const std::size_t nf = instance.facilities.size();
  const std::size_t nc = instance.clients.size();
  if (k == 0 || k > nf) {
    throw std::invalid_argument("k_median: k outside [1, #facilities]");
  }
  const CostOracle oracle(instance);

  // Seeding: weighted farthest-point (k-means++ flavour) over facilities,
  // using each facility's distance to the current open set measured via
  // the clients it would serve.
  stats::Rng rng(seed);
  std::vector<std::size_t> open{rng.index(nf)};
  std::vector<bool> is_open(nf, false);
  is_open[open[0]] = true;
  while (open.size() < k) {
    // Pick the facility that most reduces the connection total.
    double best_gain = -kInf;
    std::size_t best_i = nf;
    const double base = connection_total(oracle, open, nc);
    for (std::size_t i = 0; i < nf; ++i) {
      if (is_open[i]) continue;
      open.push_back(i);
      const double gain = base - connection_total(oracle, open, nc);
      open.pop_back();
      if (gain > best_gain) {
        best_gain = gain;
        best_i = i;
      }
    }
    open.push_back(best_i);
    is_open[best_i] = true;
  }

  // Single-swap local search.
  double current = connection_total(oracle, open, nc);
  for (std::size_t round = 0; round < options.max_swap_rounds; ++round) {
    double best = current;
    std::size_t best_slot = open.size(), best_in = nf;
    for (std::size_t slot = 0; slot < open.size(); ++slot) {
      const std::size_t out = open[slot];
      for (std::size_t in = 0; in < nf; ++in) {
        if (is_open[in]) continue;
        open[slot] = in;
        const double c = connection_total(oracle, open, nc);
        open[slot] = out;
        if (c < best - options.min_improvement) {
          best = c;
          best_slot = slot;
          best_in = in;
        }
      }
    }
    if (best_slot == open.size()) break;  // local optimum
    is_open[open[best_slot]] = false;
    is_open[best_in] = true;
    open[best_slot] = best_in;
    current = best;
  }

  // Assemble: k-median charges no opening costs.
  FlSolution sol = assign_to_open(oracle, open);
  sol.opening_cost = 0.0;
  return sol;
}

}  // namespace esharing::solver
