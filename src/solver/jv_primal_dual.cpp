#include "solver/jv_primal_dual.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

#include "solver/cost_oracle.h"

namespace esharing::solver {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr std::size_t kNone = static_cast<std::size_t>(-1);

}  // namespace

FlSolution jv_primal_dual(const FlInstance& instance) {
  instance.validate();
  const std::size_t nf = instance.facilities.size();
  const std::size_t nc = instance.clients.size();

  // Row-cached connection costs.
  const CostOracle oracle(instance);
  const auto cost = [&oracle](std::size_t i, std::size_t j) {
    return oracle.cost(i, j);
  };

  // Edge events sorted by cost: (c_ij, i, j).
  struct Edge {
    double c;
    std::size_t i, j;
  };
  std::vector<Edge> edges;
  edges.reserve(nf * nc);
  for (std::size_t i = 0; i < nf; ++i) {
    const std::vector<double>& row = oracle.row(i);
    for (std::size_t j = 0; j < nc; ++j) {
      edges.push_back({row[j], i, j});
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.c < b.c; });

  // Phase 1 state.
  std::vector<double> alpha(nc, 0.0);          // frozen dual values
  std::vector<bool> frozen(nc, false);
  std::vector<std::size_t> witness(nc, kNone); // facility that froze j
  std::vector<bool> temp_open(nf, false);
  std::vector<double> open_time(nf, kInf);
  std::vector<double> paid(nf, 0.0);           // contributions at time `now`
  std::vector<std::vector<std::size_t>> tight(nf);  // clients past the edge
  std::vector<std::vector<std::size_t>> contributors(nf);
  std::size_t remaining = nc;
  double now = 0.0;
  std::size_t edge_pos = 0;

  // Number of unfrozen tight clients of facility i (the payment rate).
  auto rate_of = [&](std::size_t i) {
    std::size_t r = 0;
    for (std::size_t j : tight[i]) {
      if (!frozen[j]) ++r;
    }
    return r;
  };

  auto freeze = [&](std::size_t j, std::size_t i, double t) {
    frozen[j] = true;
    alpha[j] = t;
    witness[j] = i;
    --remaining;
  };

  auto open_facility = [&](std::size_t i, double t) {
    temp_open[i] = true;
    open_time[i] = t;
    contributors[i].clear();
    for (std::size_t j : tight[i]) {
      // Positive contribution iff the client's (current or frozen) dual
      // exceeds the edge cost.
      const double a = frozen[j] ? alpha[j] : t;
      if (a > cost(i, j)) contributors[i].push_back(j);
      if (!frozen[j]) freeze(j, i, t);
    }
  };

  while (remaining > 0) {
    // Next edge event.
    while (edge_pos < edges.size() && frozen[edges[edge_pos].j]) ++edge_pos;
    const double t_edge = edge_pos < edges.size() ? edges[edge_pos].c : kInf;

    // Next facility-payment event.
    double t_open = kInf;
    std::size_t i_open = kNone;
    for (std::size_t i = 0; i < nf; ++i) {
      if (temp_open[i]) continue;
      // Payment at `now`: frozen contributions fixed, unfrozen grow.
      double p = 0.0;
      std::size_t rate = 0;
      for (std::size_t j : tight[i]) {
        const double a = frozen[j] ? alpha[j] : now;
        p += std::max(0.0, a - cost(i, j));
        if (!frozen[j]) ++rate;
      }
      if (rate == 0) continue;
      const double t = now + (instance.facilities[i].opening_cost - p) /
                                 static_cast<double>(rate);
      if (t < t_open) {
        t_open = t;
        i_open = i;
      }
    }

    if (t_edge == kInf && t_open == kInf) {
      // No event can fire: every unfrozen client is tight with nothing —
      // impossible since edges cover all pairs; guard anyway.
      throw std::logic_error("jv_primal_dual: stalled event simulation");
    }

    if (t_open <= t_edge) {
      now = t_open;
      paid[i_open] = instance.facilities[i_open].opening_cost;
      open_facility(i_open, now);
    } else {
      now = t_edge;
      const Edge e = edges[edge_pos++];
      if (frozen[e.j]) continue;
      if (temp_open[e.i]) {
        // Reaching the edge of an already-open facility freezes for free.
        freeze(e.j, e.i, now);
      } else {
        tight[e.i].push_back(e.j);
        (void)rate_of;
      }
    }
  }

  // Phase 2: maximal independent set over shared contributors, scanning
  // facilities in opening order.
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < nf; ++i) {
    if (temp_open[i]) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return open_time[a] < open_time[b];
  });
  std::vector<bool> client_used(nc, false);
  std::vector<std::size_t> open_set;
  for (std::size_t i : order) {
    bool conflict = false;
    for (std::size_t j : contributors[i]) {
      if (client_used[j]) {
        conflict = true;
        break;
      }
    }
    if (conflict) continue;
    open_set.push_back(i);
    for (std::size_t j : contributors[i]) client_used[j] = true;
  }
  if (open_set.empty()) {
    // Degenerate: no facility collected contributions (e.g. all f_i = 0
    // edge cases resolved by freezing at open facilities only). Fall back
    // to the first temporarily opened facility or facility 0.
    open_set.push_back(order.empty() ? 0 : order.front());
  }
  return assign_to_open(instance, open_set);
}

}  // namespace esharing::solver
