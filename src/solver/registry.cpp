#include "solver/registry.h"

#include <stdexcept>
#include <utility>

#include "geo/spatial_index.h"
#include "obs/registry.h"
#include "solver/exact.h"
#include "solver/jms_greedy.h"
#include "solver/jv_primal_dual.h"
#include "solver/k_median.h"
#include "solver/local_search.h"
#include "solver/meyerson.h"

namespace esharing::solver {

namespace {

/// Meyerson is an online algorithm over a request stream; as an offline
/// baseline it streams the instance's clients in index order (weight =
/// arrivals) with the uniform opening cost set to the mean facility
/// opening cost, then snaps every opened location onto the nearest
/// candidate facility so the result is a solution of the given instance.
FlSolution solve_meyerson(const FlInstance& instance,
                          const SolveOptions& options) {
  instance.validate();
  double mean_f = 0.0;
  for (const FlFacility& f : instance.facilities) mean_f += f.opening_cost;
  mean_f /= static_cast<double>(instance.facilities.size());
  if (!(mean_f > 0.0)) {
    throw std::invalid_argument(
        "solve(\"meyerson\"): the mean facility opening cost must be "
        "positive (a zero cost would open a station at every request)");
  }

  MeyersonPlacer placer(mean_f, options.seed);
  for (const FlClient& c : instance.clients) {
    placer.process(c.location, c.weight);
  }

  std::vector<geo::Point> sites;
  sites.reserve(instance.facilities.size());
  for (const FlFacility& f : instance.facilities) sites.push_back(f.location);
  const geo::SpatialIndex site_index(sites);

  std::vector<std::size_t> open;
  open.reserve(placer.facilities().size());
  for (geo::Point p : placer.facilities()) {
    open.push_back(site_index.nearest(p));
  }
  return assign_to_open(instance, open);
}

FlSolution solve_k_median(const FlInstance& instance,
                          const SolveOptions& options) {
  if (options.k == 0) {
    throw std::invalid_argument(
        "solve(\"k_median\"): options.k = 0 is invalid: the k-median "
        "formulation opens exactly k stations, set options.k to the "
        "station budget (1 <= k <= #facilities)");
  }
  return k_median(instance, options.k, options.seed);
}

/// Which SolveOptions fields each built-in consumes (see
/// SolveOptions::validate). A field marked false with a non-default value
/// is a contradiction, not a preference — reject it loudly.
struct ConsumedFields {
  bool num_threads{false};
  bool k{false};
  bool seed{false};
  bool local_search_knobs{false};  ///< max_iterations/allow_swaps/min_improvement
  bool exact_max_facilities{false};
  bool warm_start{false};
};

const std::map<std::string_view, ConsumedFields, std::less<>>& builtin_fields() {
  static const std::map<std::string_view, ConsumedFields, std::less<>> m = {
      {"jms", {.num_threads = true, .warm_start = true}},
      {"jv", {}},
      {"local_search",
       {.num_threads = true, .local_search_knobs = true, .warm_start = true}},
      {"k_median", {.k = true, .seed = true}},
      {"meyerson", {.seed = true}},
      {"exact", {.exact_max_facilities = true}},
  };
  return m;
}

}  // namespace

void SolveOptions::validate(std::string_view name) const {
  const auto it = builtin_fields().find(name);
  if (it == builtin_fields().end()) return;  // custom solver: own contract
  const ConsumedFields& c = it->second;
  const SolveOptions defaults;
  const auto reject = [&](const char* field, const std::string& why) {
    throw std::invalid_argument("solve(\"" + std::string(name) +
                                "\"): option " + field + " " + why);
  };
  const auto unread = [&](const char* field, bool consumed, bool changed) {
    if (!consumed && changed) {
      reject(field,
             "is not consumed by this solver — it would be silently "
             "ignored, not applied");
    }
  };
  unread("num_threads", c.num_threads, num_threads != defaults.num_threads);
  unread("k", c.k, k != defaults.k);
  unread("seed", c.seed, seed != defaults.seed);
  unread("max_iterations", c.local_search_knobs,
         max_iterations != defaults.max_iterations);
  unread("allow_swaps", c.local_search_knobs,
         allow_swaps != defaults.allow_swaps);
  unread("min_improvement", c.local_search_knobs,
         min_improvement != defaults.min_improvement);
  unread("exact_max_facilities", c.exact_max_facilities,
         exact_max_facilities != defaults.exact_max_facilities);
  unread("warm_start", c.warm_start, warm_start != nullptr);
  if (c.k && k == 0) {
    reject("k",
           "= 0 is invalid: the k-median formulation opens exactly k "
           "stations, set the station budget (1 <= k <= #facilities)");
  }
  if (c.local_search_knobs && max_iterations == 0) {
    reject("max_iterations",
           "= 0 is contradictory: the solver could never apply a single "
           "improving move");
  }
}

SolverRegistry::SolverRegistry() {
  solvers_.emplace("jms",
                   [](const FlInstance& inst, const SolveOptions& opt) {
                     if (opt.warm_start != nullptr) {
                       const CostOracle oracle(inst);
                       return jms_greedy_warm(oracle, opt.warm_start->open,
                                              JmsOptions{opt.num_threads});
                     }
                     return jms_greedy(inst, JmsOptions{opt.num_threads});
                   });
  solvers_.emplace("jv", [](const FlInstance& inst, const SolveOptions&) {
    return jv_primal_dual(inst);
  });
  solvers_.emplace("local_search",
                   [](const FlInstance& inst, const SolveOptions& opt) {
                     LocalSearchOptions ls;
                     ls.max_iterations = opt.max_iterations;
                     ls.min_improvement = opt.min_improvement;
                     ls.allow_swaps = opt.allow_swaps;
                     ls.num_threads = opt.num_threads;
                     if (opt.warm_start != nullptr) {
                       return local_search(inst, *opt.warm_start, ls);
                     }
                     return local_search_from_scratch(inst, ls);
                   });
  solvers_.emplace("k_median", solve_k_median);
  solvers_.emplace("meyerson", solve_meyerson);
  solvers_.emplace("exact",
                   [](const FlInstance& inst, const SolveOptions& opt) {
                     return exact_facility_location(inst,
                                                    opt.exact_max_facilities);
                   });
}

SolverRegistry& SolverRegistry::global() {
  static SolverRegistry instance;
  return instance;
}

void SolverRegistry::register_solver(std::string name, SolverFn fn) {
  if (name.empty()) {
    throw std::invalid_argument("SolverRegistry: empty solver name");
  }
  if (!fn) {
    throw std::invalid_argument("SolverRegistry: null solver fn for '" +
                                name + "'");
  }
  const es::LockGuard lock(mu_);
  if (!solvers_.emplace(std::move(name), std::move(fn)).second) {
    throw std::invalid_argument(
        "SolverRegistry: solver already registered under that name");
  }
}

bool SolverRegistry::contains(std::string_view name) const {
  const es::LockGuard lock(mu_);
  return solvers_.find(name) != solvers_.end();
}

std::vector<std::string> SolverRegistry::names() const {
  const es::LockGuard lock(mu_);
  std::vector<std::string> out;
  out.reserve(solvers_.size());
  for (const auto& [name, fn] : solvers_) out.push_back(name);
  return out;
}

FlSolution SolverRegistry::solve(std::string_view name,
                                 const FlInstance& instance,
                                 const SolveOptions& options) const {
  SolverFn fn;
  {
    const es::LockGuard lock(mu_);
    const auto it = solvers_.find(name);
    if (it == solvers_.end()) {
      std::string known;
      for (const auto& [n, f] : solvers_) {
        if (!known.empty()) known += ", ";
        known += n;
      }
      throw std::invalid_argument("SolverRegistry: unknown solver '" +
                                  std::string(name) + "'; registered: " +
                                  known);
    }
    fn = it->second;
  }
  options.validate(name);
  if (obs::enabled()) {
    obs::Registry::global()
        .counter("solver.registry.solves." + std::string(name))
        .add();
  }
  return fn(instance, options);
}

FlSolution solve(std::string_view name, const FlInstance& instance,
                 const SolveOptions& options) {
  return SolverRegistry::global().solve(name, instance, options);
}

std::vector<std::string> solver_names() {
  return SolverRegistry::global().names();
}

}  // namespace esharing::solver
