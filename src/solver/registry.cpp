#include "solver/registry.h"

#include <stdexcept>
#include <utility>

#include "geo/spatial_index.h"
#include "obs/registry.h"
#include "solver/exact.h"
#include "solver/jms_greedy.h"
#include "solver/jv_primal_dual.h"
#include "solver/k_median.h"
#include "solver/local_search.h"
#include "solver/meyerson.h"

namespace esharing::solver {

namespace {

/// Meyerson is an online algorithm over a request stream; as an offline
/// baseline it streams the instance's clients in index order (weight =
/// arrivals) with the uniform opening cost set to the mean facility
/// opening cost, then snaps every opened location onto the nearest
/// candidate facility so the result is a solution of the given instance.
FlSolution solve_meyerson(const FlInstance& instance,
                          const SolveOptions& options) {
  instance.validate();
  double mean_f = 0.0;
  for (const FlFacility& f : instance.facilities) mean_f += f.opening_cost;
  mean_f /= static_cast<double>(instance.facilities.size());
  if (!(mean_f > 0.0)) {
    throw std::invalid_argument(
        "solve(\"meyerson\"): the mean facility opening cost must be "
        "positive (a zero cost would open a station at every request)");
  }

  MeyersonPlacer placer(mean_f, options.seed);
  for (const FlClient& c : instance.clients) {
    placer.process(c.location, c.weight);
  }

  std::vector<geo::Point> sites;
  sites.reserve(instance.facilities.size());
  for (const FlFacility& f : instance.facilities) sites.push_back(f.location);
  const geo::SpatialIndex site_index(sites);

  std::vector<std::size_t> open;
  open.reserve(placer.facilities().size());
  for (geo::Point p : placer.facilities()) {
    open.push_back(site_index.nearest(p));
  }
  return assign_to_open(instance, open);
}

FlSolution solve_k_median(const FlInstance& instance,
                          const SolveOptions& options) {
  if (options.k == 0) {
    throw std::invalid_argument(
        "solve(\"k_median\"): options.k = 0 is invalid: the k-median "
        "formulation opens exactly k stations, set options.k to the "
        "station budget (1 <= k <= #facilities)");
  }
  return k_median(instance, options.k, options.seed);
}

}  // namespace

SolverRegistry::SolverRegistry() {
  solvers_.emplace("jms",
                   [](const FlInstance& inst, const SolveOptions& opt) {
                     return jms_greedy(inst, JmsOptions{opt.num_threads});
                   });
  solvers_.emplace("jv", [](const FlInstance& inst, const SolveOptions&) {
    return jv_primal_dual(inst);
  });
  solvers_.emplace("local_search",
                   [](const FlInstance& inst, const SolveOptions& opt) {
                     LocalSearchOptions ls;
                     ls.max_iterations = opt.max_iterations;
                     ls.min_improvement = opt.min_improvement;
                     ls.allow_swaps = opt.allow_swaps;
                     ls.num_threads = opt.num_threads;
                     return local_search_from_scratch(inst, ls);
                   });
  solvers_.emplace("k_median", solve_k_median);
  solvers_.emplace("meyerson", solve_meyerson);
  solvers_.emplace("exact",
                   [](const FlInstance& inst, const SolveOptions& opt) {
                     return exact_facility_location(inst,
                                                    opt.exact_max_facilities);
                   });
}

SolverRegistry& SolverRegistry::global() {
  static SolverRegistry instance;
  return instance;
}

void SolverRegistry::register_solver(std::string name, SolverFn fn) {
  if (name.empty()) {
    throw std::invalid_argument("SolverRegistry: empty solver name");
  }
  if (!fn) {
    throw std::invalid_argument("SolverRegistry: null solver fn for '" +
                                name + "'");
  }
  const es::LockGuard lock(mu_);
  if (!solvers_.emplace(std::move(name), std::move(fn)).second) {
    throw std::invalid_argument(
        "SolverRegistry: solver already registered under that name");
  }
}

bool SolverRegistry::contains(std::string_view name) const {
  const es::LockGuard lock(mu_);
  return solvers_.find(name) != solvers_.end();
}

std::vector<std::string> SolverRegistry::names() const {
  const es::LockGuard lock(mu_);
  std::vector<std::string> out;
  out.reserve(solvers_.size());
  for (const auto& [name, fn] : solvers_) out.push_back(name);
  return out;
}

FlSolution SolverRegistry::solve(std::string_view name,
                                 const FlInstance& instance,
                                 const SolveOptions& options) const {
  SolverFn fn;
  {
    const es::LockGuard lock(mu_);
    const auto it = solvers_.find(name);
    if (it == solvers_.end()) {
      std::string known;
      for (const auto& [n, f] : solvers_) {
        if (!known.empty()) known += ", ";
        known += n;
      }
      throw std::invalid_argument("SolverRegistry: unknown solver '" +
                                  std::string(name) + "'; registered: " +
                                  known);
    }
    fn = it->second;
  }
  if (obs::enabled()) {
    obs::Registry::global()
        .counter("solver.registry.solves." + std::string(name))
        .add();
  }
  return fn(instance, options);
}

FlSolution solve(std::string_view name, const FlInstance& instance,
                 const SolveOptions& options) {
  return SolverRegistry::global().solve(name, instance, options);
}

std::vector<std::string> solver_names() {
  return SolverRegistry::global().names();
}

}  // namespace esharing::solver
