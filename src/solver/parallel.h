#pragma once

/// \file parallel.h
/// Minimal deterministic fork-join helper for the threaded solver paths.
/// Work is split into contiguous chunks; the caller reduces per-chunk
/// results in chunk order, which keeps outputs independent of thread
/// scheduling (the determinism contract documented in DESIGN.md).

#include <algorithm>
#include <cstddef>
#include <thread>
#include <vector>

namespace esharing::solver::detail {

/// Invoke fn(begin, end, chunk) over contiguous chunks covering [0, n).
/// With num_threads <= 1 (or n == 0) everything runs inline on the caller;
/// otherwise min(num_threads, n) worker threads each take one chunk.
template <typename Fn>
void for_each_chunk(std::size_t n, std::size_t num_threads, Fn&& fn) {
  const std::size_t t = std::min(std::max<std::size_t>(num_threads, 1), n);
  if (t <= 1) {
    if (n > 0) fn(std::size_t{0}, n, std::size_t{0});
    return;
  }
  const std::size_t chunk = (n + t - 1) / t;
  std::vector<std::thread> workers;
  workers.reserve(t);
  for (std::size_t c = 0; c < t; ++c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    workers.emplace_back([&fn, begin, end, c] { fn(begin, end, c); });
  }
  for (auto& w : workers) w.join();
}

}  // namespace esharing::solver::detail
