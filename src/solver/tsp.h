#pragma once

/// \file tsp.h
/// Traveling-salesman routing for the maintenance operator. In tier two the
/// operator "traverses through all the demand sites with the shortest route
/// by solving the TSP" (Section V-E). We provide the standard heuristic
/// stack (nearest neighbour construction + 2-opt improvement) and an exact
/// Held–Karp oracle for small site counts, used by tests to bound the
/// heuristic's gap.

#include <cstddef>
#include <vector>

#include "geo/point.h"

namespace esharing::solver {

/// Length of the tour visiting `order` in sequence.
/// \param round_trip also return from the last site to the first.
/// \throws std::invalid_argument if order references invalid indices or is
///         not a permutation of the sites.
[[nodiscard]] double tour_length(const std::vector<geo::Point>& sites,
                                 const std::vector<std::size_t>& order,
                                 bool round_trip = true);

/// Nearest-neighbour construction starting from `start`.
/// \throws std::invalid_argument if sites is empty or start out of range.
[[nodiscard]] std::vector<std::size_t> tsp_nearest_neighbor(
    const std::vector<geo::Point>& sites, std::size_t start = 0);

/// 2-opt local improvement of an initial tour until no improving move.
/// \throws std::invalid_argument if `order` is not a permutation.
[[nodiscard]] std::vector<std::size_t> tsp_two_opt(
    const std::vector<geo::Point>& sites, std::vector<std::size_t> order,
    bool round_trip = true);

/// Exact tour via Held–Karp dynamic programming; O(2^n n^2), n <= 20.
/// Returns a round-trip tour starting at site 0.
/// \throws std::invalid_argument if sites is empty or has more than 20 sites.
[[nodiscard]] std::vector<std::size_t> tsp_held_karp(
    const std::vector<geo::Point>& sites);

/// Convenience solver: Held–Karp when n <= 12, otherwise NN + 2-opt.
[[nodiscard]] std::vector<std::size_t> solve_tsp(
    const std::vector<geo::Point>& sites);

}  // namespace esharing::solver
