#pragma once

/// \file cost_oracle.h
/// Lazily materialized client x facility cost matrix shared by every
/// offline PLP solver. Each solver used to re-derive c_ij = a_j * d_ij via
/// FlInstance::connection_cost on every access (and JMS re-sorted all
/// clients per facility per iteration); the oracle computes each facility
/// row at most once and caches the per-facility client ordering sorted by
/// (cost, client index).
///
/// Exactness contract: `row(i)[j]` is the very expression
/// `instance.connection_cost(i, j)` evaluated once — the same double. The
/// row kernel reads client coordinates/weights from contiguous
/// structure-of-arrays planes packed at construction (not through the
/// per-client Point structs), but computes the identical
/// `a_j * hypot(fx - cx, fy - cy)` expression, so solvers threaded through
/// the oracle stay bit-identical to their pre-oracle versions
/// (regression-tested, including SoA-vs-scalar).
///
/// Concurrency contract: each row slot carries an atomic state
/// (empty -> building -> ready). The first thread to CAS empty->building
/// materializes the row and release-publishes ready; concurrent callers of
/// the SAME row spin-yield until it is ready. Any mix of threads may
/// therefore call row()/sorted_row()/cost() on any facilities concurrently
/// — the old "no two threads touch the same not-yet-materialized row"
/// restriction is gone (TSan-covered).
///
/// Delta contract (incremental re-optimization): apply_delta(delta)
/// re-synchronizes the oracle after the SAME delta was applied to the
/// underlying instance (apply_delta(FlInstance&, delta) from
/// instance_delta.h — the ReoptimizationSession drives both in order).
/// Materialized state is carried across the delta instead of being thrown
/// away: rows of removed facilities are dropped, surviving ready rows are
/// patched in place (changed-weight entries recomputed with the exact
/// kernel expression, removed entries erased, appended clients computed
/// fresh) and untouched rows plus — when no client changed — their sorted
/// orderings are reused verbatim. Every surviving ready row is therefore
/// bit-identical to the row a fresh oracle on the post-delta instance
/// would materialize (regression-tested). `rows_reused` / `rows_invalidated`
/// / `sorted_invalidated` count carried, dropped and re-sort-forced caches
/// per delta (obs counters solver.cost_oracle.*). apply_delta requires
/// exclusive access: it is NOT safe concurrently with any reader — it is
/// the epoch boundary between solves, not a hot-path operation.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "solver/facility_location.h"

namespace esharing::solver {

struct InstanceDelta;

class CostOracle {
 public:
  /// The instance must outlive the oracle (no copy is taken).
  explicit CostOracle(const FlInstance& instance);

  CostOracle(const CostOracle&) = delete;
  CostOracle& operator=(const CostOracle&) = delete;

  [[nodiscard]] const FlInstance& instance() const { return *instance_; }
  [[nodiscard]] std::size_t num_facilities() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_clients() const {
    return instance_->clients.size();
  }

  /// c_ij, materializing facility i's row on first access.
  [[nodiscard]] double cost(std::size_t facility, std::size_t client) const {
    return row(facility)[client];
  }

  /// Facility i's full cost row, one entry per client.
  [[nodiscard]] const std::vector<double>& row(std::size_t facility) const;

  /// All clients ordered by (c_ij, client index) ascending — the exact
  /// order std::sort produces on pairs, so prefix walks over a filtered
  /// subsequence match sorting that subset directly.
  [[nodiscard]] const std::vector<std::pair<double, std::size_t>>& sorted_row(
      std::size_t facility) const;

  /// Materialize rows [begin, end) in parallel on the exec pool,
  /// facility-partitioned (`width` lanes, 0 = pool width). Values are
  /// bit-identical to lazy materialization at any width.
  void ensure_rows(std::size_t begin, std::size_t end,
                   std::size_t width = 0) const;

  /// ensure_rows over every facility.
  void ensure_all_rows(std::size_t width = 0) const;

  /// Re-synchronize with the underlying instance after `delta` was applied
  /// to it (see the delta contract in the file comment). Requires
  /// exclusive access; bumps revision().
  /// \throws std::logic_error if the oracle and the instance disagree on
  ///         the post-delta sizes (the delta was not applied, or a
  ///         different one was).
  void apply_delta(const InstanceDelta& delta);

  /// Number of apply_delta calls absorbed so far.
  [[nodiscard]] std::uint64_t revision() const { return revision_; }

 private:
  /// Row-slot lifecycle for the atomic publication protocol.
  enum : std::uint8_t { kEmpty = 0, kBuilding = 1, kReady = 2 };

  /// Compute facility i's row into rows_[i] from the SoA planes and
  /// release-publish its state. Caller must have won the empty->building
  /// CAS on state.
  void materialize_row(std::size_t facility,
                       std::atomic<std::uint8_t>& state) const;

  const FlInstance* instance_;
  /// Structure-of-arrays client planes (immutable after construction):
  /// contiguous x/y/weight so the row kernel is a tight streaming loop
  /// instead of striding through FlClient structs.
  std::vector<double> client_x_;
  std::vector<double> client_y_;
  std::vector<double> client_w_;
  mutable std::vector<std::vector<double>> rows_;
  mutable std::unique_ptr<std::atomic<std::uint8_t>[]> row_state_;
  mutable std::vector<std::vector<std::pair<double, std::size_t>>> sorted_rows_;
  mutable std::unique_ptr<std::atomic<std::uint8_t>[]> sorted_state_;
  std::uint64_t revision_{0};
};

/// Oracle-backed twin of assign_to_open(instance, open): identical result,
/// but connection costs come from cached rows.
/// \throws std::invalid_argument if `open` is empty or indices are invalid.
[[nodiscard]] FlSolution assign_to_open(const CostOracle& oracle,
                                        const std::vector<std::size_t>& open);

}  // namespace esharing::solver
