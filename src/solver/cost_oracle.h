#pragma once

/// \file cost_oracle.h
/// Lazily materialized client x facility cost matrix shared by every
/// offline PLP solver. Each solver used to re-derive c_ij = a_j * d_ij via
/// FlInstance::connection_cost on every access (and JMS re-sorted all
/// clients per facility per iteration); the oracle computes each facility
/// row at most once and caches the per-facility client ordering sorted by
/// (cost, client index).
///
/// Exactness contract: `row(i)[j]` is the very expression
/// `instance.connection_cost(i, j)` evaluated once — the same double — so
/// solvers threaded through the oracle produce bit-identical open sets,
/// assignments and costs to their pre-oracle versions (regression-tested).
///
/// Concurrency contract: rows are cached in preallocated per-facility
/// slots. Concurrent const access is safe as long as no two threads touch
/// the SAME not-yet-materialized facility row; the deterministic threaded
/// solvers partition facilities across workers, which satisfies this.

#include <cstddef>
#include <utility>
#include <vector>

#include "solver/facility_location.h"

namespace esharing::solver {

class CostOracle {
 public:
  /// The instance must outlive the oracle (no copy is taken).
  explicit CostOracle(const FlInstance& instance);

  [[nodiscard]] const FlInstance& instance() const { return *instance_; }
  [[nodiscard]] std::size_t num_facilities() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_clients() const {
    return instance_->clients.size();
  }

  /// c_ij, materializing facility i's row on first access.
  [[nodiscard]] double cost(std::size_t facility, std::size_t client) const {
    return row(facility)[client];
  }

  /// Facility i's full cost row, one entry per client.
  [[nodiscard]] const std::vector<double>& row(std::size_t facility) const;

  /// All clients ordered by (c_ij, client index) ascending — the exact
  /// order std::sort produces on pairs, so prefix walks over a filtered
  /// subsequence match sorting that subset directly.
  [[nodiscard]] const std::vector<std::pair<double, std::size_t>>& sorted_row(
      std::size_t facility) const;

 private:
  const FlInstance* instance_;
  mutable std::vector<std::vector<double>> rows_;
  mutable std::vector<char> row_ready_;
  mutable std::vector<std::vector<std::pair<double, std::size_t>>> sorted_rows_;
  mutable std::vector<char> sorted_ready_;
};

/// Oracle-backed twin of assign_to_open(instance, open): identical result,
/// but connection costs come from cached rows.
/// \throws std::invalid_argument if `open` is empty or indices are invalid.
[[nodiscard]] FlSolution assign_to_open(const CostOracle& oracle,
                                        const std::vector<std::size_t>& open);

}  // namespace esharing::solver
