#pragma once

/// \file online_kmeans.h
/// Online k-means of Liberty, Sriharsha and Sviridenko [ALENEX 2016], the
/// second online baseline in Table V. It is a facility-location-flavored
/// clustering: an arriving point becomes a new center with probability
/// min(D^2 / f_r, 1) where D is the distance to the closest center; the
/// facility cost f_r doubles whenever a phase opens more than
/// q = 3k(1 + log n) centers, keeping the center count near O(k log n).
/// Evaluated under PLP costs (linear walking + per-station space cost) it
/// over-opens, which is exactly the behaviour Table V reports.

#include <cstdint>
#include <vector>

#include "geo/point.h"
#include "geo/spatial_index.h"
#include "solver/meyerson.h"
#include "stats/rng.h"

namespace esharing::solver {

class OnlineKMeans {
 public:
  /// \param k target number of clusters (from the offline solution)
  /// \param n_hint expected stream length (sets the phase budget)
  /// \throws std::invalid_argument if k == 0 or n_hint == 0.
  OnlineKMeans(std::size_t k, std::size_t n_hint, std::uint64_t seed);

  /// Process one streaming point.
  OnlineDecision process(geo::Point p, double weight = 1.0);

  [[nodiscard]] const std::vector<geo::Point>& centers() const { return centers_; }
  [[nodiscard]] std::size_t num_open() const { return centers_.size(); }
  /// Current facility cost f_r (squared-distance units).
  [[nodiscard]] double facility_cost() const { return f_r_; }
  [[nodiscard]] int phase() const { return phase_; }

 private:
  std::size_t k_;
  std::size_t phase_budget_;
  stats::Rng rng_;
  std::vector<geo::Point> centers_;
  geo::SpatialIndex index_;  ///< bucketed mirror of centers_ (same ids)
  std::vector<geo::Point> warmup_;  ///< first k+1 points before streaming
  double f_r_{0.0};
  std::size_t opened_in_phase_{0};
  int phase_{1};
};

}  // namespace esharing::solver
