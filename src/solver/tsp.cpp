#include "solver/tsp.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace esharing::solver {

namespace {

void require_permutation(const std::vector<geo::Point>& sites,
                         const std::vector<std::size_t>& order,
                         const char* who) {
  if (order.size() != sites.size()) {
    throw std::invalid_argument(std::string(who) + ": order size mismatch");
  }
  std::vector<bool> seen(sites.size(), false);
  for (std::size_t i : order) {
    if (i >= sites.size() || seen[i]) {
      throw std::invalid_argument(std::string(who) + ": order is not a permutation");
    }
    seen[i] = true;
  }
}

}  // namespace

double tour_length(const std::vector<geo::Point>& sites,
                   const std::vector<std::size_t>& order, bool round_trip) {
  require_permutation(sites, order, "tour_length");
  if (order.size() < 2) return 0.0;
  double len = 0.0;
  for (std::size_t k = 0; k + 1 < order.size(); ++k) {
    len += geo::distance(sites[order[k]], sites[order[k + 1]]);
  }
  if (round_trip) len += geo::distance(sites[order.back()], sites[order.front()]);
  return len;
}

std::vector<std::size_t> tsp_nearest_neighbor(
    const std::vector<geo::Point>& sites, std::size_t start) {
  if (sites.empty()) {
    throw std::invalid_argument("tsp_nearest_neighbor: no sites");
  }
  if (start >= sites.size()) {
    throw std::invalid_argument("tsp_nearest_neighbor: start out of range");
  }
  std::vector<bool> visited(sites.size(), false);
  std::vector<std::size_t> order;
  order.reserve(sites.size());
  std::size_t current = start;
  visited[current] = true;
  order.push_back(current);
  while (order.size() < sites.size()) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t next = current;
    for (std::size_t i = 0; i < sites.size(); ++i) {
      if (visited[i]) continue;
      const double d = geo::distance2(sites[current], sites[i]);
      if (d < best) {
        best = d;
        next = i;
      }
    }
    visited[next] = true;
    order.push_back(next);
    current = next;
  }
  return order;
}

std::vector<std::size_t> tsp_two_opt(const std::vector<geo::Point>& sites,
                                     std::vector<std::size_t> order,
                                     bool round_trip) {
  require_permutation(sites, order, "tsp_two_opt");
  if (order.size() < 4) return order;
  const auto dist = [&](std::size_t a, std::size_t b) {
    return geo::distance(sites[order[a]], sites[order[b]]);
  };
  const std::size_t n = order.size();
  bool improved = true;
  while (improved) {
    improved = false;
    // Reverse segment (i..j); the affected edges are (i-1,i) and (j,j+1).
    for (std::size_t i = 1; i + 1 < n; ++i) {
      const std::size_t j_max = round_trip ? n - 1 : n - 2;
      for (std::size_t j = i + 1; j <= j_max; ++j) {
        const std::size_t after = (j + 1) % n;
        if (!round_trip && after == 0) continue;
        const double before_cost =
            dist(i - 1, i) + (round_trip || after != 0 ? dist(j, after) : 0.0);
        const double after_cost =
            dist(i - 1, j) + (round_trip || after != 0 ? dist(i, after) : 0.0);
        if (after_cost + 1e-9 < before_cost) {
          std::reverse(order.begin() + static_cast<std::ptrdiff_t>(i),
                       order.begin() + static_cast<std::ptrdiff_t>(j) + 1);
          improved = true;
        }
      }
    }
  }
  return order;
}

std::vector<std::size_t> tsp_held_karp(const std::vector<geo::Point>& sites) {
  if (sites.empty()) throw std::invalid_argument("tsp_held_karp: no sites");
  const std::size_t n = sites.size();
  if (n > 20) {
    throw std::invalid_argument("tsp_held_karp: too many sites for exact DP");
  }
  if (n == 1) return {0};

  // dp[mask][last]: shortest path visiting `mask` (always containing site
  // 0), starting at 0 and ending at `last`.
  const std::size_t full = (std::size_t{1} << n) - 1;
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> dp(full + 1, std::vector<double>(n, kInf));
  std::vector<std::vector<std::size_t>> parent(
      full + 1, std::vector<std::size_t>(n, 0));
  dp[1][0] = 0.0;
  for (std::size_t mask = 1; mask <= full; ++mask) {
    if ((mask & 1) == 0) continue;
    for (std::size_t last = 0; last < n; ++last) {
      if (dp[mask][last] == kInf || (mask >> last & 1) == 0) continue;
      for (std::size_t next = 1; next < n; ++next) {
        if (mask >> next & 1) continue;
        const std::size_t nmask = mask | (std::size_t{1} << next);
        const double cand = dp[mask][last] + geo::distance(sites[last], sites[next]);
        if (cand < dp[nmask][next]) {
          dp[nmask][next] = cand;
          parent[nmask][next] = last;
        }
      }
    }
  }
  double best = kInf;
  std::size_t best_last = 0;
  for (std::size_t last = 1; last < n; ++last) {
    const double cand = dp[full][last] + geo::distance(sites[last], sites[0]);
    if (cand < best) {
      best = cand;
      best_last = last;
    }
  }
  std::vector<std::size_t> order;
  std::size_t mask = full;
  std::size_t cur = best_last;
  while (order.size() < n) {
    order.push_back(cur);
    const std::size_t prev = parent[mask][cur];
    mask &= ~(std::size_t{1} << cur);
    cur = prev;
  }
  std::reverse(order.begin(), order.end());
  return order;  // starts at 0 by construction
}

std::vector<std::size_t> solve_tsp(const std::vector<geo::Point>& sites) {
  if (sites.empty()) throw std::invalid_argument("solve_tsp: no sites");
  if (sites.size() <= 12) return tsp_held_karp(sites);
  return tsp_two_opt(sites, tsp_nearest_neighbor(sites));
}

}  // namespace esharing::solver
