#pragma once

/// \file instance_delta.h
/// The perturbation vocabulary of the incremental re-optimization engine:
/// demand drifts between two planning epochs are expressed as an
/// `InstanceDelta` against the previous `FlInstance` — client weight
/// updates (arrival-rate drift), client add/remove (cells appearing in or
/// vanishing from the demand window) and facility add/remove (candidate
/// sites opening up or being withdrawn) — instead of rebuilding the
/// instance from scratch. A delta is the unit the delta-aware CostOracle
/// and the ReoptimizationSession (reopt.h) consume: only rows whose
/// entries actually change are touched, and the previous solution warm
/// starts the re-solve.
///
/// Canonical application order (apply_delta): weight updates first (they
/// name pre-delta client indices), then removals (pre-delta indices,
/// applied in descending order so every index stays valid), then appends.
/// Index remapping across a delta (remap_facility / remap_open_set)
/// follows the same convention, which is what lets a previous FlSolution's
/// open set be carried across a structural delta.

#include <cstddef>
#include <functional>
#include <vector>

#include "geo/point.h"
#include "solver/facility_location.h"

namespace esharing::solver {

/// Re-weight one client: `client` is a pre-delta index, `weight` the new
/// expected-arrivals value a_j.
struct WeightUpdate {
  std::size_t client{0};
  double weight{0.0};
};

/// One epoch's demand drift against a concrete FlInstance.
struct InstanceDelta {
  std::vector<WeightUpdate> weight_updates;    ///< pre-delta client indices
  std::vector<std::size_t> remove_clients;     ///< pre-delta client indices
  std::vector<FlClient> add_clients;           ///< appended after removals
  std::vector<std::size_t> remove_facilities;  ///< pre-delta facility indices
  std::vector<FlFacility> add_facilities;      ///< appended after removals

  /// True when applying the delta would be a no-op.
  [[nodiscard]] bool empty() const {
    return weight_updates.empty() && remove_clients.empty() &&
           add_clients.empty() && remove_facilities.empty() &&
           add_facilities.empty();
  }

  /// Check the delta against the instance it is about to be applied to:
  /// every index in range, no duplicate removals, no weight update naming
  /// a removed or duplicated client, non-negative weights/opening costs,
  /// and a non-empty post-delta instance.
  /// \throws std::invalid_argument on the first violated constraint.
  void validate(const FlInstance& instance) const;
};

/// Sentinel returned by remap_facility for a removed facility.
inline constexpr std::size_t kRemovedIndex = static_cast<std::size_t>(-1);

/// Apply `delta` to `instance` in the canonical order (see file comment).
/// \throws std::invalid_argument via InstanceDelta::validate.
void apply_delta(FlInstance& instance, const InstanceDelta& delta);

/// Post-delta index of a pre-delta facility, or kRemovedIndex when the
/// delta removes it. Appended facilities never affect surviving indices.
[[nodiscard]] std::size_t remap_facility(std::size_t facility,
                                         const InstanceDelta& delta);

/// Carry an open set across a delta: removed facilities drop out, the
/// survivors shift down past the removals. The result preserves the input
/// order (ascending inputs stay ascending) and may be empty when the delta
/// removed every open facility.
[[nodiscard]] std::vector<std::size_t> remap_open_set(
    const std::vector<std::size_t>& open, const InstanceDelta& delta);

/// Diff a colocated instance (every client is also the candidate facility
/// at the same centroid, see colocated_instance) against a new demand
/// snapshot: clients are matched by exact location; a matched client with
/// a different weight becomes a WeightUpdate, an unmatched target becomes
/// a client+facility append (opening cost from `opening_cost`), and a
/// current client absent from the target is removed together with its
/// facility — so applying the result keeps the instance colocated.
/// Targets appearing twice at the same location have their weights summed.
/// \throws std::invalid_argument if the instance is not colocated
///         (clients[i].location != facilities[i].location or size
///         mismatch) or `opening_cost` is null.
[[nodiscard]] InstanceDelta diff_colocated(
    const FlInstance& instance, const std::vector<FlClient>& target,
    const std::function<double(geo::Point)>& opening_cost);

}  // namespace esharing::solver
