#pragma once

/// \file local_search.h
/// Local-search improvement for facility location: starting from any
/// feasible open set, repeatedly apply the best improving move among
/// open(i), close(i) and swap(i, i') until none improves. The classic
/// analysis bounds local optima at 3x the true optimum (Arya et al.); in
/// this library the pass is mainly used to polish solutions from the
/// greedy/primal-dual algorithms and as another cross-check in tests.
///
/// Connection costs come from a CostOracle (rows materialized once, not
/// per scan). Candidate-move evaluation can be partitioned across threads:
/// every move's cost is computed independently, then the winning move is
/// selected by a sequential scan in the canonical move order (opens,
/// closes, swaps), so results are bit-identical for every num_threads.

#include <cstddef>

#include "solver/cost_oracle.h"
#include "solver/facility_location.h"

namespace esharing::solver {

struct LocalSearchOptions {
  std::size_t max_iterations{1000};  ///< safety cap on improving moves
  double min_improvement{1e-9};      ///< ignore smaller-than-noise gains
  bool allow_swaps{true};            ///< include swap moves (costlier scan)
  /// Lanes on the exec pool for candidate-move evaluation: 0 = the
  /// process-wide pool width (ESHARING_THREADS), 1 = fully sequential on
  /// the caller. Outputs are identical for any value.
  std::size_t num_threads{1};
};

/// Improve `initial` by local search. The returned solution's total cost
/// is never worse than the input's.
/// \throws std::invalid_argument on invalid instances or an empty/invalid
///         initial open set.
[[nodiscard]] FlSolution local_search(const FlInstance& instance,
                                      const FlSolution& initial,
                                      const LocalSearchOptions& options = {});

/// Run against an existing oracle (shared with other solver passes).
[[nodiscard]] FlSolution local_search(const CostOracle& oracle,
                                      const FlSolution& initial,
                                      const LocalSearchOptions& options = {});

/// Convenience: greedy-style start (cheapest single facility) + local
/// search from scratch.
[[nodiscard]] FlSolution local_search_from_scratch(
    const FlInstance& instance, const LocalSearchOptions& options = {});

}  // namespace esharing::solver
