#include "solver/meyerson.h"

#include <stdexcept>

namespace esharing::solver {

MeyersonPlacer::MeyersonPlacer(double opening_cost, std::uint64_t seed)
    : opening_cost_(opening_cost), rng_(seed) {
  if (!(opening_cost > 0.0)) {
    throw std::invalid_argument("MeyersonPlacer: opening_cost must be positive");
  }
}

OnlineDecision MeyersonPlacer::process(geo::Point p, double weight) {
  if (!(weight >= 0.0)) {
    throw std::invalid_argument("MeyersonPlacer::process: negative weight");
  }
  OnlineDecision decision;
  if (facilities_.empty()) {
    facilities_.push_back(p);
    index_.insert(p);
    decision.opened = true;
    decision.facility = 0;
    return decision;
  }
  const std::size_t nearest = index_.nearest(p);
  const double d = weight * geo::distance(facilities_[nearest], p);
  if (rng_.bernoulli(d / opening_cost_)) {
    facilities_.push_back(p);
    index_.insert(p);
    decision.opened = true;
    decision.facility = facilities_.size() - 1;
  } else {
    decision.facility = nearest;
    decision.connection_cost = d;
    connection_cost_ += d;
  }
  return decision;
}

}  // namespace esharing::solver
