#include "solver/online_kmeans.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace esharing::solver {

OnlineKMeans::OnlineKMeans(std::size_t k, std::size_t n_hint,
                           std::uint64_t seed)
    : k_(k), rng_(seed) {
  if (k == 0) throw std::invalid_argument("OnlineKMeans: k must be positive");
  if (n_hint == 0) throw std::invalid_argument("OnlineKMeans: n_hint must be positive");
  phase_budget_ = static_cast<std::size_t>(
      std::ceil(3.0 * static_cast<double>(k) *
                (1.0 + std::log(static_cast<double>(n_hint)))));
}

OnlineDecision OnlineKMeans::process(geo::Point p, double weight) {
  if (!(weight >= 0.0)) {
    throw std::invalid_argument("OnlineKMeans::process: negative weight");
  }
  OnlineDecision decision;

  // Warm-up: the first k+1 points become centers; w* = half the minimum
  // pairwise distance among them seeds f_1 = (w*)^2 / k.
  if (centers_.size() <= k_) {
    centers_.push_back(p);
    index_.insert(p);
    warmup_.push_back(p);
    decision.opened = true;
    decision.facility = centers_.size() - 1;
    if (centers_.size() == k_ + 1) {
      // Smallest positive pairwise distance; duplicate warm-up points (e.g.
      // geohash-quantized requests) must not collapse the seed to zero.
      double min_d2 = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < warmup_.size(); ++i) {
        for (std::size_t j = i + 1; j < warmup_.size(); ++j) {
          const double d2 = geo::distance2(warmup_[i], warmup_[j]);
          if (d2 > 0.0) min_d2 = std::min(min_d2, d2);
        }
      }
      if (!std::isfinite(min_d2)) min_d2 = 1.0;
      f_r_ = min_d2 / (4.0 * static_cast<double>(k_));  // (w*/2)^2-style seed
      warmup_.clear();
    }
    return decision;
  }

  const std::size_t nearest = index_.nearest(p);
  const double d2 = weight * geo::distance2(centers_[nearest], p);
  if (rng_.bernoulli(d2 / f_r_)) {
    centers_.push_back(p);
    index_.insert(p);
    decision.opened = true;
    decision.facility = centers_.size() - 1;
    if (++opened_in_phase_ >= phase_budget_) {
      opened_in_phase_ = 0;
      f_r_ *= 2.0;
      ++phase_;
    }
  } else {
    decision.facility = nearest;
    decision.connection_cost = weight * geo::distance(centers_[nearest], p);
  }
  return decision;
}

}  // namespace esharing::solver
