#pragma once

/// \file jv_primal_dual.h
/// The Jain-Vazirani primal-dual facility location algorithm [JACM 2001],
/// cited by the paper as reference [22] among the PLP approximation
/// algorithms. Phase 1 grows all client dual variables alpha_j uniformly;
/// once alpha_j reaches c_ij the client contributes beta_ij = alpha_j -
/// c_ij toward facility i's opening cost, and a facility opens temporarily
/// when its contributions cover f_i. Phase 2 keeps a maximal independent
/// set of temporarily-open facilities (no two sharing a contributing
/// client) and connects everyone. Guarantees a 3-approximation (the
/// refined analysis gives 1.861); in this library it serves as a second
/// offline baseline and as a cross-check of the JMS greedy.

#include "solver/facility_location.h"

namespace esharing::solver {

/// Solve an instance with the JV primal-dual algorithm.
/// \throws std::invalid_argument on invalid instances.
[[nodiscard]] FlSolution jv_primal_dual(const FlInstance& instance);

}  // namespace esharing::solver
