#pragma once

/// \file registry.h
/// Unified solver entry point: one `solve(name, instance, options)` call
/// mapping a solver name to the corresponding offline PLP algorithm. Benches
/// and tools that compare solver families (Table V, plp_compare) iterate
/// over names instead of hard-coding one call site per algorithm, and new
/// solvers become comparable by registering under a name.
///
/// Built-in names:
///   "jms"          Jain-Mahdian-... greedy (the paper's Algorithm 1)
///   "jv"           Jain-Vazirani primal-dual
///   "local_search" cheapest-single-facility start + open/close/swap moves
///   "k_median"     fixed station budget (requires options.k >= 1)
///   "meyerson"     the online baseline streamed over clients in index
///                  order with uniform f = mean facility opening cost,
///                  then mapped back onto the instance's candidate sites
///   "exact"        branch-and-bound optimum (small instances only)
///
/// Every built-in returns a valid FlSolution on the given instance, and
/// routing through the registry is bit-identical to calling the underlying
/// solver directly with the same options.

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/sync.h"
#include "core/thread_annotations.h"
#include "solver/facility_location.h"

namespace esharing::solver {

/// Superset of the per-solver knobs. Which solver consumes which field is
/// part of the contract: validate(name) rejects an option set with a
/// non-default value for a field the named built-in ignores (formerly a
/// silent no-op), and solve() validates before dispatching.
struct SolveOptions {
  /// Lanes on the exec pool ("jms", "local_search"): 0 = the process-wide
  /// pool width (ESHARING_THREADS), 1 = sequential. Outputs are identical
  /// for any value.
  std::size_t num_threads{1};
  /// Station budget, "k_median" only (that solver throws when left 0).
  std::size_t k{0};
  /// Randomized solvers ("k_median" seeding, "meyerson" coin flips).
  std::uint64_t seed{0};
  /// "local_search" controls.
  std::size_t max_iterations{1000};
  bool allow_swaps{true};
  double min_improvement{1e-9};
  /// "exact" safety cap on candidate facilities.
  std::size_t exact_max_facilities{22};
  /// Previous epoch's solution on the SAME instance ("jms",
  /// "local_search"): jms seeds its greedy from the prior open set
  /// (jms_greedy_warm), local_search resumes from the prior solution
  /// instead of the from-scratch start. Borrowed — must outlive the solve
  /// call; nullptr = cold solve.
  const FlSolution* warm_start{nullptr};

  /// Check this option set against the named built-in solver: rejects a
  /// non-default value for a field that solver ignores (e.g. `k` for
  /// "jms"), a missing `k` for "k_median", `max_iterations = 0` for
  /// "local_search" (it could never improve), and `warm_start` for solvers
  /// with no warm path. Unknown (user-registered) names pass — the
  /// registry cannot know their contract.
  /// \throws std::invalid_argument naming the solver and the offending
  ///         field.
  void validate(std::string_view name) const;
};

using SolverFn =
    std::function<FlSolution(const FlInstance&, const SolveOptions&)>;

class SolverRegistry {
 public:
  SolverRegistry(const SolverRegistry&) = delete;
  SolverRegistry& operator=(const SolverRegistry&) = delete;

  /// The process-wide registry, pre-populated with the built-ins above.
  static SolverRegistry& global();

  /// \throws std::invalid_argument on an empty name, a null fn, or a name
  ///         already registered.
  void register_solver(std::string name, SolverFn fn);

  [[nodiscard]] bool contains(std::string_view name) const;
  /// Registered names in sorted order.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Run the named solver.
  /// \throws std::invalid_argument for unknown names (the message lists
  ///         what is registered) and for solver-specific option errors.
  [[nodiscard]] FlSolution solve(std::string_view name,
                                 const FlInstance& instance,
                                 const SolveOptions& options = {}) const;

 private:
  SolverRegistry();  ///< registers the built-ins

  mutable es::Mutex mu_;
  std::map<std::string, SolverFn, std::less<>> solvers_ ES_GUARDED_BY(mu_);
};

/// Convenience forwarding to SolverRegistry::global().
[[nodiscard]] FlSolution solve(std::string_view name,
                               const FlInstance& instance,
                               const SolveOptions& options = {});
[[nodiscard]] std::vector<std::string> solver_names();

}  // namespace esharing::solver
