#pragma once

/// \file capacitated.h
/// Capacitated assignment: once parkings exist, each has finite physical
/// capacity — the overcrowding problem the paper lists among dockless
/// sharing's pains ("the peak time drop-off ... leads to a parking
/// turmoil"). Given open stations with capacities and weighted demand
/// points, assign demand to stations without exceeding capacity,
/// minimizing total walking. Exact assignment is a transportation problem;
/// we provide the standard regret-greedy heuristic (assign in order of the
/// largest first-vs-second choice gap) plus a cheapest-feasible fallback,
/// and report overflow that no capacity can absorb.

#include <cstddef>
#include <vector>

#include "geo/point.h"

namespace esharing::solver {

struct CapacitatedStation {
  geo::Point location;
  double capacity{0.0};  ///< demand units this station can absorb
};

struct CapacitatedDemand {
  geo::Point location;
  double amount{1.0};
};

struct CapacitatedAssignment {
  /// Per demand point, per assigned station: amount placed there. Demands
  /// may split across stations when capacities force it.
  struct Share {
    std::size_t demand{0};
    std::size_t station{0};
    double amount{0.0};
  };
  std::vector<Share> shares;
  double walking_cost{0.0};   ///< sum over shares of amount * distance
  double overflow{0.0};       ///< demand no capacity could absorb

  [[nodiscard]] bool feasible() const { return overflow <= 1e-9; }
};

/// Regret-greedy capacitated assignment.
/// \throws std::invalid_argument on empty inputs or negative amounts.
[[nodiscard]] CapacitatedAssignment assign_capacitated(
    const std::vector<CapacitatedStation>& stations,
    const std::vector<CapacitatedDemand>& demands);

/// Walking cost of the same demand under unlimited capacities (the
/// baseline the capacity squeeze is measured against).
[[nodiscard]] double uncapacitated_walking_cost(
    const std::vector<CapacitatedStation>& stations,
    const std::vector<CapacitatedDemand>& demands);

}  // namespace esharing::solver
