#include "solver/instance_delta.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>

namespace esharing::solver {

namespace {

/// Sorted copy of `indices`; throws naming `what` on out-of-range or
/// duplicate entries.
std::vector<std::size_t> checked_sorted_removals(
    const std::vector<std::size_t>& indices, std::size_t bound,
    const char* what) {
  std::vector<std::size_t> sorted = indices;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i] >= bound) {
      throw std::invalid_argument(
          std::string("InstanceDelta: ") + what + " index " +
          std::to_string(sorted[i]) + " out of range (instance has " +
          std::to_string(bound) + ")");
    }
    if (i > 0 && sorted[i] == sorted[i - 1]) {
      throw std::invalid_argument(std::string("InstanceDelta: duplicate ") +
                                  what + " removal " +
                                  std::to_string(sorted[i]));
    }
  }
  return sorted;
}

}  // namespace

void InstanceDelta::validate(const FlInstance& instance) const {
  const std::size_t nc = instance.clients.size();
  const std::size_t nf = instance.facilities.size();
  const auto removed_clients =
      checked_sorted_removals(remove_clients, nc, "client");
  static_cast<void>(checked_sorted_removals(remove_facilities, nf, "facility"));

  std::vector<bool> updated(nc, false);
  for (const WeightUpdate& u : weight_updates) {
    if (u.client >= nc) {
      throw std::invalid_argument(
          "InstanceDelta: weight update names client " +
          std::to_string(u.client) + ", instance has " + std::to_string(nc));
    }
    if (updated[u.client]) {
      throw std::invalid_argument(
          "InstanceDelta: client " + std::to_string(u.client) +
          " has two weight updates (ambiguous)");
    }
    updated[u.client] = true;
    if (std::binary_search(removed_clients.begin(), removed_clients.end(),
                           u.client)) {
      throw std::invalid_argument(
          "InstanceDelta: client " + std::to_string(u.client) +
          " is both re-weighted and removed (contradictory)");
    }
    if (!(u.weight >= 0.0)) {
      throw std::invalid_argument(
          "InstanceDelta: negative weight for client " +
          std::to_string(u.client));
    }
  }
  for (const FlClient& c : add_clients) {
    if (!(c.weight >= 0.0)) {
      throw std::invalid_argument("InstanceDelta: negative added-client weight");
    }
  }
  for (const FlFacility& f : add_facilities) {
    if (!(f.opening_cost >= 0.0)) {
      throw std::invalid_argument(
          "InstanceDelta: negative added-facility opening cost");
    }
  }
  if (nc - remove_clients.size() + add_clients.size() == 0) {
    throw std::invalid_argument(
        "InstanceDelta: the delta removes every client — a solvable "
        "instance needs at least one");
  }
  if (nf - remove_facilities.size() + add_facilities.size() == 0) {
    throw std::invalid_argument(
        "InstanceDelta: the delta removes every facility — a solvable "
        "instance needs at least one");
  }
}

void apply_delta(FlInstance& instance, const InstanceDelta& delta) {
  delta.validate(instance);
  for (const WeightUpdate& u : delta.weight_updates) {
    instance.clients[u.client].weight = u.weight;
  }
  std::vector<std::size_t> removals = delta.remove_clients;
  std::sort(removals.begin(), removals.end(), std::greater<>());
  for (std::size_t j : removals) {
    instance.clients.erase(instance.clients.begin() +
                           static_cast<std::ptrdiff_t>(j));
  }
  removals = delta.remove_facilities;
  std::sort(removals.begin(), removals.end(), std::greater<>());
  for (std::size_t i : removals) {
    instance.facilities.erase(instance.facilities.begin() +
                              static_cast<std::ptrdiff_t>(i));
  }
  instance.clients.insert(instance.clients.end(), delta.add_clients.begin(),
                          delta.add_clients.end());
  instance.facilities.insert(instance.facilities.end(),
                             delta.add_facilities.begin(),
                             delta.add_facilities.end());
}

std::size_t remap_facility(std::size_t facility, const InstanceDelta& delta) {
  std::size_t shift = 0;
  for (std::size_t removed : delta.remove_facilities) {
    if (removed == facility) return kRemovedIndex;
    if (removed < facility) ++shift;
  }
  return facility - shift;
}

std::vector<std::size_t> remap_open_set(const std::vector<std::size_t>& open,
                                        const InstanceDelta& delta) {
  std::vector<std::size_t> out;
  out.reserve(open.size());
  for (std::size_t f : open) {
    const std::size_t mapped = remap_facility(f, delta);
    if (mapped != kRemovedIndex) out.push_back(mapped);
  }
  return out;
}

InstanceDelta diff_colocated(
    const FlInstance& instance, const std::vector<FlClient>& target,
    const std::function<double(geo::Point)>& opening_cost) {
  if (!opening_cost) {
    throw std::invalid_argument("diff_colocated: null opening cost fn");
  }
  if (instance.clients.size() != instance.facilities.size()) {
    throw std::invalid_argument(
        "diff_colocated: not a colocated instance (client/facility count "
        "mismatch)");
  }
  // Ordered map keyed by exact coordinates: deterministic iteration, exact
  // matching (demand-cell centroids are computed identically across
  // epochs, so location equality is bit-exact by construction).
  using Key = std::pair<double, double>;
  std::map<Key, std::size_t> by_location;
  for (std::size_t j = 0; j < instance.clients.size(); ++j) {
    const geo::Point cp = instance.clients[j].location;
    const geo::Point fp = instance.facilities[j].location;
    if (cp.x != fp.x || cp.y != fp.y) {
      throw std::invalid_argument(
          "diff_colocated: not a colocated instance (client " +
          std::to_string(j) + " and its facility sit at different points)");
    }
    if (!by_location.emplace(Key{cp.x, cp.y}, j).second) {
      throw std::invalid_argument(
          "diff_colocated: two clients share one location — the diff "
          "matches by exact location, so centroids must be unique");
    }
  }

  // Coalesce duplicate target locations (two demand cells can only collide
  // if the caller built them that way; summing weights keeps the diff
  // well-defined) while preserving first-appearance order for appends.
  std::map<Key, double> target_weight;
  std::vector<geo::Point> target_order;
  for (const FlClient& c : target) {
    const Key k{c.location.x, c.location.y};
    auto [it, inserted] = target_weight.emplace(k, c.weight);
    if (inserted) {
      target_order.push_back(c.location);
    } else {
      it->second += c.weight;
    }
  }

  InstanceDelta delta;
  for (const geo::Point p : target_order) {
    const double w = target_weight.at(Key{p.x, p.y});
    const auto it = by_location.find(Key{p.x, p.y});
    if (it == by_location.end()) {
      delta.add_clients.push_back({p, w});
      delta.add_facilities.push_back({p, opening_cost(p)});
    } else if (instance.clients[it->second].weight != w) {
      delta.weight_updates.push_back({it->second, w});
    }
  }
  for (const auto& [key, j] : by_location) {
    if (target_weight.find(key) == target_weight.end()) {
      delta.remove_clients.push_back(j);
      delta.remove_facilities.push_back(j);
    }
  }
  std::sort(delta.remove_clients.begin(), delta.remove_clients.end());
  std::sort(delta.remove_facilities.begin(), delta.remove_facilities.end());
  return delta;
}

}  // namespace esharing::solver
