#pragma once

/// \file facility_location.h
/// The Parking Location Placement (PLP) problem as an uncapacitated
/// facility-location instance (paper problem P1, Eq. 1-4):
///
///   min  sum_i sum_j c_ij x_ij + sum_{i open} f_i
///
/// Clients are grid centroids j weighted by expected arrivals a_j
/// (c_ij = a_j * d_ij, Definition 1); facilities are candidate parking
/// locations i with space-occupation opening cost f_i (Definition 2).
/// Every cost is expressed in meters of equivalent walking distance, the
/// paper's unified unit.

#include <cstddef>
#include <vector>

#include "geo/point.h"

namespace esharing::solver {

/// One demand point: a grid centroid with its expected number of arrivals.
struct FlClient {
  geo::Point location;
  double weight{1.0};  ///< a_j, expected arrivals at this grid
};

/// One candidate parking location.
struct FlFacility {
  geo::Point location;
  double opening_cost{0.0};  ///< f_i, space-occupation cost (meters-equivalent)
};

/// An uncapacitated facility-location instance.
struct FlInstance {
  std::vector<FlClient> clients;
  std::vector<FlFacility> facilities;

  /// Weighted connection cost c_ij = a_j * d_ij.
  [[nodiscard]] double connection_cost(std::size_t facility,
                                       std::size_t client) const;

  /// \throws std::invalid_argument if clients or facilities are empty.
  void validate() const;
};

/// A solution: the set of open facilities and the per-client assignment.
struct FlSolution {
  std::vector<std::size_t> open;        ///< indices into instance.facilities
  std::vector<std::size_t> assignment;  ///< per client, index into facilities
  double connection_cost{0.0};          ///< total user dissatisfaction
  double opening_cost{0.0};             ///< total space occupation

  [[nodiscard]] double total_cost() const { return connection_cost + opening_cost; }
  [[nodiscard]] std::size_t num_open() const { return open.size(); }
};

/// Build the instance the paper uses: every client grid is also a candidate
/// facility at the same centroid, with the given opening costs.
/// \throws std::invalid_argument if sizes mismatch.
[[nodiscard]] FlInstance colocated_instance(std::vector<FlClient> clients,
                                            std::vector<double> opening_costs);

/// Assign every client to its cheapest facility among `open` and tally
/// costs. Used both to finish solutions and as an oracle in tests.
/// \throws std::invalid_argument if `open` is empty or indices are invalid.
[[nodiscard]] FlSolution assign_to_open(const FlInstance& instance,
                                        const std::vector<std::size_t>& open);

/// Recompute a solution's costs from its open set and assignment.
/// \throws std::invalid_argument on inconsistent solutions (assignment to a
///         closed facility, wrong assignment size).
[[nodiscard]] FlSolution recost(const FlInstance& instance, FlSolution sol);

}  // namespace esharing::solver
