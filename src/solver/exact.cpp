#include "solver/exact.h"

#include <limits>
#include <stdexcept>
#include <vector>

#include "solver/cost_oracle.h"

namespace esharing::solver {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Depth-first branch and bound. State: for each facility, open / closed /
/// undecided (decided in index order). Lower bound: opening costs of the
/// already-open set plus, per client, the cheapest connection among
/// facilities that are open or still undecided.
class BranchAndBound {
 public:
  explicit BranchAndBound(const FlInstance& inst) : inst_(inst), oracle_(inst) {
    state_.assign(inst.facilities.size(), State::kUndecided);
  }

  FlSolution solve() {
    recurse(0, 0.0);
    if (best_open_.empty()) {
      throw std::logic_error("exact_facility_location: no feasible solution");
    }
    return assign_to_open(inst_, best_open_);
  }

 private:
  enum class State { kUndecided, kOpen, kClosed };

  double lower_bound(double opened_cost) const {
    double bound = opened_cost;
    for (std::size_t j = 0; j < inst_.clients.size(); ++j) {
      double cheapest = kInf;
      for (std::size_t i = 0; i < inst_.facilities.size(); ++i) {
        if (state_[i] != State::kClosed) {
          cheapest = std::min(cheapest, oracle_.cost(i, j));
        }
      }
      if (cheapest == kInf) return kInf;  // some client unservable
      bound += cheapest;
    }
    return bound;
  }

  void recurse(std::size_t idx, double opened_cost) {
    const double bound = lower_bound(opened_cost);
    if (bound >= best_cost_) return;
    if (idx == inst_.facilities.size()) {
      // All decided; the bound is now the exact cost of this open set.
      best_cost_ = bound;
      best_open_.clear();
      for (std::size_t i = 0; i < state_.size(); ++i) {
        if (state_[i] == State::kOpen) best_open_.push_back(i);
      }
      return;
    }
    state_[idx] = State::kOpen;
    recurse(idx + 1, opened_cost + inst_.facilities[idx].opening_cost);
    state_[idx] = State::kClosed;
    recurse(idx + 1, opened_cost);
    state_[idx] = State::kUndecided;
  }

  const FlInstance& inst_;
  CostOracle oracle_;
  std::vector<State> state_;
  double best_cost_{kInf};
  std::vector<std::size_t> best_open_;
};

}  // namespace

FlSolution exact_facility_location(const FlInstance& instance,
                                   std::size_t max_facilities) {
  instance.validate();
  if (instance.facilities.size() > max_facilities) {
    throw std::invalid_argument(
        "exact_facility_location: too many candidate facilities for exact search");
  }
  return BranchAndBound(instance).solve();
}

}  // namespace esharing::solver
