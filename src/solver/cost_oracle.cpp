#include "solver/cost_oracle.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>  // lint-ok: raw-thread std::this_thread::yield only, no spawning

#include "exec/thread_pool.h"
#include "obs/registry.h"
#include "solver/instance_delta.h"

namespace esharing::solver {

namespace {

struct OracleMetrics {
  obs::Counter& row_materializations;
  obs::Counter& row_hits;
  obs::Counter& sorted_materializations;
  obs::Counter& sorted_hits;
  obs::Counter& rows_reused;
  obs::Counter& rows_invalidated;
  obs::Counter& sorted_invalidated;

  static OracleMetrics& get() {
    static OracleMetrics m{
        obs::Registry::global().counter(
            "solver.cost_oracle.row_materializations"),
        obs::Registry::global().counter("solver.cost_oracle.row_hits"),
        obs::Registry::global().counter(
            "solver.cost_oracle.sorted_materializations"),
        obs::Registry::global().counter("solver.cost_oracle.sorted_hits"),
        obs::Registry::global().counter("solver.cost_oracle.rows_reused"),
        obs::Registry::global().counter("solver.cost_oracle.rows_invalidated"),
        obs::Registry::global().counter(
            "solver.cost_oracle.sorted_invalidated"),
    };
    return m;
  }
};

/// One facility row per chunk in batch materialization: a row is O(clients)
/// hypots, heavy enough that finer grain buys load balance, not overhead.
constexpr std::size_t kRowGrain = 1;

}  // namespace

CostOracle::CostOracle(const FlInstance& instance)
    : instance_(&instance),
      rows_(instance.facilities.size()),
      row_state_(new std::atomic<std::uint8_t>[instance.facilities.size()]),
      sorted_rows_(instance.facilities.size()),
      sorted_state_(new std::atomic<std::uint8_t>[instance.facilities.size()]) {
  const std::size_t nc = instance.clients.size();
  client_x_.reserve(nc);
  client_y_.reserve(nc);
  client_w_.reserve(nc);
  for (const FlClient& c : instance.clients) {
    client_x_.push_back(c.location.x);
    client_y_.push_back(c.location.y);
    client_w_.push_back(c.weight);
  }
  for (std::size_t i = 0; i < instance.facilities.size(); ++i) {
    row_state_[i].store(kEmpty, std::memory_order_relaxed);
    sorted_state_[i].store(kEmpty, std::memory_order_relaxed);
  }
}

void CostOracle::materialize_row(std::size_t facility,
                                 std::atomic<std::uint8_t>& state) const {
  if (obs::enabled()) OracleMetrics::get().row_materializations.add();
  const std::size_t nc = client_x_.size();
  const double fx = instance_->facilities[facility].location.x;
  const double fy = instance_->facilities[facility].location.y;
  std::vector<double> r(nc);
  // SoA kernel: the exact FlInstance::connection_cost expression
  // a_j * hypot(fx - cx, fy - cy), streamed over contiguous planes.
  for (std::size_t j = 0; j < nc; ++j) {
    r[j] = client_w_[j] * std::hypot(fx - client_x_[j], fy - client_y_[j]);
  }
  rows_[facility] = std::move(r);
  state.store(kReady, std::memory_order_release);
}

const std::vector<double>& CostOracle::row(std::size_t facility) const {
  if (facility >= rows_.size()) {
    throw std::out_of_range("CostOracle::row: facility index out of range");
  }
  std::atomic<std::uint8_t>& state = row_state_[facility];
  if (state.load(std::memory_order_acquire) == kReady) {
    if (obs::enabled()) {
      // Hit counting sits in the solvers' innermost loops (millions of
      // accesses per solve) — batch per thread instead of one RMW per hit.
      thread_local obs::CounterShard hits(OracleMetrics::get().row_hits);
      hits.add();
    }
    return rows_[facility];
  }
  std::uint8_t expected = kEmpty;
  if (state.compare_exchange_strong(expected, kBuilding,
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
    materialize_row(facility, state);
  } else {
    // Another thread won the slot; its kReady release-store makes the row
    // contents visible to this acquire spin.
    while (state.load(std::memory_order_acquire) != kReady) {
      std::this_thread::yield();
    }
  }
  return rows_[facility];
}

const std::vector<std::pair<double, std::size_t>>& CostOracle::sorted_row(
    std::size_t facility) const {
  if (facility >= sorted_rows_.size()) {
    throw std::out_of_range("CostOracle::sorted_row: facility index out of range");
  }
  std::atomic<std::uint8_t>& state = sorted_state_[facility];
  if (state.load(std::memory_order_acquire) == kReady) {
    if (obs::enabled()) {
      thread_local obs::CounterShard hits(OracleMetrics::get().sorted_hits);
      hits.add();
    }
    return sorted_rows_[facility];
  }
  std::uint8_t expected = kEmpty;
  if (state.compare_exchange_strong(expected, kBuilding,
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
    if (obs::enabled()) OracleMetrics::get().sorted_materializations.add();
    const std::vector<double>& r = row(facility);
    std::vector<std::pair<double, std::size_t>> sorted;
    sorted.reserve(r.size());
    for (std::size_t j = 0; j < r.size(); ++j) sorted.emplace_back(r[j], j);
    std::sort(sorted.begin(), sorted.end());
    sorted_rows_[facility] = std::move(sorted);
    state.store(kReady, std::memory_order_release);
  } else {
    while (state.load(std::memory_order_acquire) != kReady) {
      std::this_thread::yield();
    }
  }
  return sorted_rows_[facility];
}

void CostOracle::ensure_rows(std::size_t begin, std::size_t end,
                             std::size_t width) const {
  if (end > rows_.size() || begin > end) {
    throw std::out_of_range("CostOracle::ensure_rows: bad facility range");
  }
  exec::parallel_for(
      end - begin, kRowGrain,
      [&](std::size_t b, std::size_t e, std::size_t) {
        for (std::size_t i = begin + b; i < begin + e; ++i) {
          static_cast<void>(row(i));
        }
      },
      width);
}

void CostOracle::ensure_all_rows(std::size_t width) const {
  ensure_rows(0, rows_.size(), width);
}

void CostOracle::apply_delta(const InstanceDelta& delta) {
  const std::size_t nc_old = client_x_.size();
  const std::size_t nf_old = rows_.size();
  const std::size_t nc_new = instance_->clients.size();
  const std::size_t nf_new = instance_->facilities.size();
  if (delta.remove_clients.size() > nc_old ||
      delta.remove_facilities.size() > nf_old ||
      nc_old - delta.remove_clients.size() + delta.add_clients.size() !=
          nc_new ||
      nf_old - delta.remove_facilities.size() + delta.add_facilities.size() !=
          nf_new) {
    throw std::logic_error(
        "CostOracle::apply_delta: instance size does not match the oracle's "
        "pre-delta view plus this delta — apply_delta(instance, delta) must "
        "run first, with the same delta");
  }
  for (const WeightUpdate& u : delta.weight_updates) {
    if (u.client >= nc_old) {
      throw std::logic_error(
          "CostOracle::apply_delta: weight update names a client beyond the "
          "pre-delta instance");
    }
  }
  for (std::size_t j : delta.remove_clients) {
    if (j >= nc_old) {
      throw std::logic_error(
          "CostOracle::apply_delta: client removal beyond the pre-delta "
          "instance");
    }
  }
  for (std::size_t i : delta.remove_facilities) {
    if (i >= nf_old) {
      throw std::logic_error(
          "CostOracle::apply_delta: facility removal beyond the pre-delta "
          "instance");
    }
  }

  const bool clients_changed = !delta.weight_updates.empty() ||
                               !delta.remove_clients.empty() ||
                               !delta.add_clients.empty();

  std::vector<std::size_t> removed_f = delta.remove_facilities;
  std::sort(removed_f.begin(), removed_f.end());
  // Descending so per-row erasures keep later indices valid.
  std::vector<std::size_t> removed_c = delta.remove_clients;
  std::sort(removed_c.begin(), removed_c.end(), std::greater<>());

  std::uint64_t reused = 0;
  std::uint64_t invalidated = 0;
  std::uint64_t sorted_dropped = 0;

  std::vector<std::vector<double>> new_rows;
  std::vector<std::vector<std::pair<double, std::size_t>>> new_sorted;
  new_rows.reserve(nf_new);
  new_sorted.reserve(nf_new);
  std::unique_ptr<std::atomic<std::uint8_t>[]> new_row_state(
      new std::atomic<std::uint8_t>[nf_new]);
  std::unique_ptr<std::atomic<std::uint8_t>[]> new_sorted_state(
      new std::atomic<std::uint8_t>[nf_new]);

  std::size_t next_removed = 0;
  for (std::size_t i = 0; i < nf_old; ++i) {
    if (next_removed < removed_f.size() && removed_f[next_removed] == i) {
      ++next_removed;
      if (row_state_[i].load(std::memory_order_relaxed) == kReady) {
        ++invalidated;
      }
      if (sorted_state_[i].load(std::memory_order_relaxed) == kReady) {
        ++sorted_dropped;
      }
      continue;
    }
    const std::size_t ni = new_rows.size();
    const std::uint8_t rstate = row_state_[i].load(std::memory_order_relaxed);
    if (rstate == kReady) {
      std::vector<double>& r = rows_[i];
      if (clients_changed) {
        // Patch in place against the PRE-delta SoA planes (a re-weighted
        // client keeps its coordinates); every touched entry is recomputed
        // with the exact fresh-oracle kernel expression, so the patched
        // row is bit-identical to a cold materialization.
        const double fx = instance_->facilities[ni].location.x;
        const double fy = instance_->facilities[ni].location.y;
        for (const WeightUpdate& u : delta.weight_updates) {
          if (client_w_[u.client] == u.weight) continue;
          r[u.client] = u.weight * std::hypot(fx - client_x_[u.client],
                                              fy - client_y_[u.client]);
        }
        for (std::size_t j : removed_c) {
          r.erase(r.begin() + static_cast<std::ptrdiff_t>(j));
        }
        for (const FlClient& c : delta.add_clients) {
          r.push_back(c.weight *
                      std::hypot(fx - c.location.x, fy - c.location.y));
        }
      }
      ++reused;
    }
    new_rows.push_back(std::move(rows_[i]));
    new_row_state[ni].store(rstate, std::memory_order_relaxed);
    const std::uint8_t sstate =
        sorted_state_[i].load(std::memory_order_relaxed);
    if (clients_changed) {
      // Any client change can reorder the row; force a fresh sort.
      if (sstate == kReady) ++sorted_dropped;
      new_sorted.emplace_back();
      new_sorted_state[ni].store(kEmpty, std::memory_order_relaxed);
    } else {
      new_sorted.push_back(std::move(sorted_rows_[i]));
      new_sorted_state[ni].store(sstate, std::memory_order_relaxed);
    }
  }
  for (std::size_t i = new_rows.size(); i < nf_new; ++i) {
    new_rows.emplace_back();
    new_sorted.emplace_back();
    new_row_state[i].store(kEmpty, std::memory_order_relaxed);
    new_sorted_state[i].store(kEmpty, std::memory_order_relaxed);
  }

  // Only now mutate the SoA planes (row patching above read the old ones).
  for (const WeightUpdate& u : delta.weight_updates) {
    client_w_[u.client] = u.weight;
  }
  for (std::size_t j : removed_c) {
    client_x_.erase(client_x_.begin() + static_cast<std::ptrdiff_t>(j));
    client_y_.erase(client_y_.begin() + static_cast<std::ptrdiff_t>(j));
    client_w_.erase(client_w_.begin() + static_cast<std::ptrdiff_t>(j));
  }
  for (const FlClient& c : delta.add_clients) {
    client_x_.push_back(c.location.x);
    client_y_.push_back(c.location.y);
    client_w_.push_back(c.weight);
  }

  rows_ = std::move(new_rows);
  sorted_rows_ = std::move(new_sorted);
  row_state_ = std::move(new_row_state);
  sorted_state_ = std::move(new_sorted_state);
  ++revision_;

  if (obs::enabled()) {
    OracleMetrics& m = OracleMetrics::get();
    m.rows_reused.add(reused);
    m.rows_invalidated.add(invalidated);
    m.sorted_invalidated.add(sorted_dropped);
  }
}

FlSolution assign_to_open(const CostOracle& oracle,
                          const std::vector<std::size_t>& open) {
  if (open.empty()) {
    throw std::invalid_argument("assign_to_open: empty open set");
  }
  for (std::size_t f : open) {
    if (f >= oracle.num_facilities()) {
      throw std::invalid_argument("assign_to_open: facility index out of range");
    }
  }
  FlSolution sol;
  sol.open = open;
  std::sort(sol.open.begin(), sol.open.end());
  sol.open.erase(std::unique(sol.open.begin(), sol.open.end()), sol.open.end());
  sol.assignment.resize(oracle.num_clients());
  for (std::size_t j = 0; j < oracle.num_clients(); ++j) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_f = sol.open.front();
    for (std::size_t f : sol.open) {
      const double c = oracle.cost(f, j);
      if (c < best) {
        best = c;
        best_f = f;
      }
    }
    sol.assignment[j] = best_f;
    sol.connection_cost += best;
  }
  for (std::size_t f : sol.open) {
    sol.opening_cost += oracle.instance().facilities[f].opening_cost;
  }
  return sol;
}

}  // namespace esharing::solver
