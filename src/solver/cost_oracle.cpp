#include "solver/cost_oracle.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/registry.h"

namespace esharing::solver {

namespace {

struct OracleMetrics {
  obs::Counter& row_materializations;
  obs::Counter& row_hits;
  obs::Counter& sorted_materializations;
  obs::Counter& sorted_hits;

  static OracleMetrics& get() {
    static OracleMetrics m{
        obs::Registry::global().counter(
            "solver.cost_oracle.row_materializations"),
        obs::Registry::global().counter("solver.cost_oracle.row_hits"),
        obs::Registry::global().counter(
            "solver.cost_oracle.sorted_materializations"),
        obs::Registry::global().counter("solver.cost_oracle.sorted_hits"),
    };
    return m;
  }
};

}  // namespace

CostOracle::CostOracle(const FlInstance& instance)
    : instance_(&instance),
      rows_(instance.facilities.size()),
      row_ready_(instance.facilities.size(), 0),
      sorted_rows_(instance.facilities.size()),
      sorted_ready_(instance.facilities.size(), 0) {}

const std::vector<double>& CostOracle::row(std::size_t facility) const {
  if (facility >= rows_.size()) {
    throw std::out_of_range("CostOracle::row: facility index out of range");
  }
  if (!row_ready_[facility]) {
    if (obs::enabled()) OracleMetrics::get().row_materializations.add();
    const std::size_t nc = instance_->clients.size();
    std::vector<double> r(nc);
    for (std::size_t j = 0; j < nc; ++j) {
      r[j] = instance_->connection_cost(facility, j);
    }
    rows_[facility] = std::move(r);
    row_ready_[facility] = 1;
  } else if (obs::enabled()) {
    // Hit counting sits in the solvers' innermost loops (millions of
    // accesses per solve) — batch per thread instead of one RMW per hit.
    thread_local obs::CounterShard hits(OracleMetrics::get().row_hits);
    hits.add();
  }
  return rows_[facility];
}

const std::vector<std::pair<double, std::size_t>>& CostOracle::sorted_row(
    std::size_t facility) const {
  if (facility >= sorted_rows_.size()) {
    throw std::out_of_range("CostOracle::sorted_row: facility index out of range");
  }
  if (!sorted_ready_[facility]) {
    if (obs::enabled()) OracleMetrics::get().sorted_materializations.add();
    const std::vector<double>& r = row(facility);
    std::vector<std::pair<double, std::size_t>> sorted;
    sorted.reserve(r.size());
    for (std::size_t j = 0; j < r.size(); ++j) sorted.emplace_back(r[j], j);
    std::sort(sorted.begin(), sorted.end());
    sorted_rows_[facility] = std::move(sorted);
    sorted_ready_[facility] = 1;
  } else if (obs::enabled()) {
    thread_local obs::CounterShard hits(OracleMetrics::get().sorted_hits);
    hits.add();
  }
  return sorted_rows_[facility];
}

FlSolution assign_to_open(const CostOracle& oracle,
                          const std::vector<std::size_t>& open) {
  if (open.empty()) {
    throw std::invalid_argument("assign_to_open: empty open set");
  }
  for (std::size_t f : open) {
    if (f >= oracle.num_facilities()) {
      throw std::invalid_argument("assign_to_open: facility index out of range");
    }
  }
  FlSolution sol;
  sol.open = open;
  std::sort(sol.open.begin(), sol.open.end());
  sol.open.erase(std::unique(sol.open.begin(), sol.open.end()), sol.open.end());
  sol.assignment.resize(oracle.num_clients());
  for (std::size_t j = 0; j < oracle.num_clients(); ++j) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_f = sol.open.front();
    for (std::size_t f : sol.open) {
      const double c = oracle.cost(f, j);
      if (c < best) {
        best = c;
        best_f = f;
      }
    }
    sol.assignment[j] = best_f;
    sol.connection_cost += best;
  }
  for (std::size_t f : sol.open) {
    sol.opening_cost += oracle.instance().facilities[f].opening_cost;
  }
  return sol;
}

}  // namespace esharing::solver
