#include "solver/cost_oracle.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>  // lint-ok: raw-thread std::this_thread::yield only, no spawning

#include "exec/thread_pool.h"
#include "obs/registry.h"

namespace esharing::solver {

namespace {

struct OracleMetrics {
  obs::Counter& row_materializations;
  obs::Counter& row_hits;
  obs::Counter& sorted_materializations;
  obs::Counter& sorted_hits;

  static OracleMetrics& get() {
    static OracleMetrics m{
        obs::Registry::global().counter(
            "solver.cost_oracle.row_materializations"),
        obs::Registry::global().counter("solver.cost_oracle.row_hits"),
        obs::Registry::global().counter(
            "solver.cost_oracle.sorted_materializations"),
        obs::Registry::global().counter("solver.cost_oracle.sorted_hits"),
    };
    return m;
  }
};

/// One facility row per chunk in batch materialization: a row is O(clients)
/// hypots, heavy enough that finer grain buys load balance, not overhead.
constexpr std::size_t kRowGrain = 1;

}  // namespace

CostOracle::CostOracle(const FlInstance& instance)
    : instance_(&instance),
      rows_(instance.facilities.size()),
      row_state_(new std::atomic<std::uint8_t>[instance.facilities.size()]),
      sorted_rows_(instance.facilities.size()),
      sorted_state_(new std::atomic<std::uint8_t>[instance.facilities.size()]) {
  const std::size_t nc = instance.clients.size();
  client_x_.reserve(nc);
  client_y_.reserve(nc);
  client_w_.reserve(nc);
  for (const FlClient& c : instance.clients) {
    client_x_.push_back(c.location.x);
    client_y_.push_back(c.location.y);
    client_w_.push_back(c.weight);
  }
  for (std::size_t i = 0; i < instance.facilities.size(); ++i) {
    row_state_[i].store(kEmpty, std::memory_order_relaxed);
    sorted_state_[i].store(kEmpty, std::memory_order_relaxed);
  }
}

void CostOracle::materialize_row(std::size_t facility,
                                 std::atomic<std::uint8_t>& state) const {
  if (obs::enabled()) OracleMetrics::get().row_materializations.add();
  const std::size_t nc = client_x_.size();
  const double fx = instance_->facilities[facility].location.x;
  const double fy = instance_->facilities[facility].location.y;
  std::vector<double> r(nc);
  // SoA kernel: the exact FlInstance::connection_cost expression
  // a_j * hypot(fx - cx, fy - cy), streamed over contiguous planes.
  for (std::size_t j = 0; j < nc; ++j) {
    r[j] = client_w_[j] * std::hypot(fx - client_x_[j], fy - client_y_[j]);
  }
  rows_[facility] = std::move(r);
  state.store(kReady, std::memory_order_release);
}

const std::vector<double>& CostOracle::row(std::size_t facility) const {
  if (facility >= rows_.size()) {
    throw std::out_of_range("CostOracle::row: facility index out of range");
  }
  std::atomic<std::uint8_t>& state = row_state_[facility];
  if (state.load(std::memory_order_acquire) == kReady) {
    if (obs::enabled()) {
      // Hit counting sits in the solvers' innermost loops (millions of
      // accesses per solve) — batch per thread instead of one RMW per hit.
      thread_local obs::CounterShard hits(OracleMetrics::get().row_hits);
      hits.add();
    }
    return rows_[facility];
  }
  std::uint8_t expected = kEmpty;
  if (state.compare_exchange_strong(expected, kBuilding,
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
    materialize_row(facility, state);
  } else {
    // Another thread won the slot; its kReady release-store makes the row
    // contents visible to this acquire spin.
    while (state.load(std::memory_order_acquire) != kReady) {
      std::this_thread::yield();
    }
  }
  return rows_[facility];
}

const std::vector<std::pair<double, std::size_t>>& CostOracle::sorted_row(
    std::size_t facility) const {
  if (facility >= sorted_rows_.size()) {
    throw std::out_of_range("CostOracle::sorted_row: facility index out of range");
  }
  std::atomic<std::uint8_t>& state = sorted_state_[facility];
  if (state.load(std::memory_order_acquire) == kReady) {
    if (obs::enabled()) {
      thread_local obs::CounterShard hits(OracleMetrics::get().sorted_hits);
      hits.add();
    }
    return sorted_rows_[facility];
  }
  std::uint8_t expected = kEmpty;
  if (state.compare_exchange_strong(expected, kBuilding,
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
    if (obs::enabled()) OracleMetrics::get().sorted_materializations.add();
    const std::vector<double>& r = row(facility);
    std::vector<std::pair<double, std::size_t>> sorted;
    sorted.reserve(r.size());
    for (std::size_t j = 0; j < r.size(); ++j) sorted.emplace_back(r[j], j);
    std::sort(sorted.begin(), sorted.end());
    sorted_rows_[facility] = std::move(sorted);
    state.store(kReady, std::memory_order_release);
  } else {
    while (state.load(std::memory_order_acquire) != kReady) {
      std::this_thread::yield();
    }
  }
  return sorted_rows_[facility];
}

void CostOracle::ensure_rows(std::size_t begin, std::size_t end,
                             std::size_t width) const {
  if (end > rows_.size() || begin > end) {
    throw std::out_of_range("CostOracle::ensure_rows: bad facility range");
  }
  exec::parallel_for(
      end - begin, kRowGrain,
      [&](std::size_t b, std::size_t e, std::size_t) {
        for (std::size_t i = begin + b; i < begin + e; ++i) {
          static_cast<void>(row(i));
        }
      },
      width);
}

void CostOracle::ensure_all_rows(std::size_t width) const {
  ensure_rows(0, rows_.size(), width);
}

FlSolution assign_to_open(const CostOracle& oracle,
                          const std::vector<std::size_t>& open) {
  if (open.empty()) {
    throw std::invalid_argument("assign_to_open: empty open set");
  }
  for (std::size_t f : open) {
    if (f >= oracle.num_facilities()) {
      throw std::invalid_argument("assign_to_open: facility index out of range");
    }
  }
  FlSolution sol;
  sol.open = open;
  std::sort(sol.open.begin(), sol.open.end());
  sol.open.erase(std::unique(sol.open.begin(), sol.open.end()), sol.open.end());
  sol.assignment.resize(oracle.num_clients());
  for (std::size_t j = 0; j < oracle.num_clients(); ++j) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_f = sol.open.front();
    for (std::size_t f : sol.open) {
      const double c = oracle.cost(f, j);
      if (c < best) {
        best = c;
        best_f = f;
      }
    }
    sol.assignment[j] = best_f;
    sol.connection_cost += best;
  }
  for (std::size_t f : sol.open) {
    sol.opening_cost += oracle.instance().facilities[f].opening_cost;
  }
  return sol;
}

}  // namespace esharing::solver
