#include "solver/local_search.h"

#include <limits>
#include <stdexcept>
#include <vector>

#include "exec/thread_pool.h"
#include "obs/registry.h"
#include "obs/scoped_timer.h"

namespace esharing::solver {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct LocalSearchMetrics {
  obs::Counter& solves;
  obs::Counter& iterations;
  obs::Counter& moves_evaluated;
  obs::Histogram& solve_seconds;

  static LocalSearchMetrics& get() {
    static LocalSearchMetrics m{
        obs::Registry::global().counter("solver.local_search.solves"),
        obs::Registry::global().counter("solver.local_search.iterations"),
        obs::Registry::global().counter("solver.local_search.moves_evaluated"),
        obs::Registry::global().histogram("solver.local_search.solve_seconds"),
    };
    return m;
  }
};

/// One candidate move: open `force_open` and/or close `force_close`
/// (nf = no-op on that side). Open moves have force_close == nf, close
/// moves force_open == nf, swaps set both.
struct Move {
  std::size_t force_open;
  std::size_t force_close;
};

/// Total cost of `open` with the move's overrides applied, scanning
/// facilities in ascending index order exactly like the pre-oracle
/// evaluate() did; returns infinity for an empty effective set.
double evaluate(const CostOracle& oracle, const std::vector<bool>& open,
                std::size_t force_open, std::size_t force_close) {
  const FlInstance& inst = oracle.instance();
  const std::size_t nf = open.size();
  double total = 0.0;
  std::vector<const std::vector<double>*> rows;
  for (std::size_t i = 0; i < nf; ++i) {
    const bool on = (open[i] || i == force_open) && i != force_close;
    if (on) {
      total += inst.facilities[i].opening_cost;
      rows.push_back(&oracle.row(i));
    }
  }
  if (rows.empty()) return kInf;
  for (std::size_t j = 0; j < inst.clients.size(); ++j) {
    double best = kInf;
    for (const auto* row : rows) best = std::min(best, (*row)[j]);
    total += best;
  }
  return total;
}

}  // namespace

FlSolution local_search(const CostOracle& oracle, const FlSolution& initial,
                        const LocalSearchOptions& options) {
  const FlInstance& instance = oracle.instance();
  instance.validate();
  if (initial.open.empty()) {
    throw std::invalid_argument("local_search: empty initial open set");
  }
  const std::size_t nf = instance.facilities.size();
  // num_threads = pool width request: 0 = process-wide exec pool width.
  const std::size_t threads = exec::resolve_width(options.num_threads);

  const obs::ScopedTimer timer(LocalSearchMetrics::get().solve_seconds);
  if (obs::enabled()) LocalSearchMetrics::get().solves.add();

  // Materialize every row up front so move evaluations only read: batch
  // materialization on the exec pool (row slots publish atomically, so
  // overlapping access would be safe regardless — this is for throughput).
  oracle.ensure_all_rows(threads);

  std::vector<bool> open(nf, false);
  for (std::size_t i : initial.open) {
    if (i >= nf) {
      throw std::invalid_argument("local_search: facility index out of range");
    }
    open[i] = true;
  }
  double current = evaluate(oracle, open, nf, nf);

  std::vector<Move> moves;
  std::vector<double> move_cost;
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Canonical move order: opens, closes, swaps (out-major). The
    // sequential selection below depends on this order, so it is part of
    // the determinism contract.
    moves.clear();
    for (std::size_t i = 0; i < nf; ++i) {
      if (!open[i]) moves.push_back({i, nf});
    }
    for (std::size_t i = 0; i < nf; ++i) {
      if (open[i]) moves.push_back({nf, i});
    }
    if (options.allow_swaps) {
      for (std::size_t out = 0; out < nf; ++out) {
        if (!open[out]) continue;
        for (std::size_t in = 0; in < nf; ++in) {
          if (!open[in] && in != out) moves.push_back({in, out});
        }
      }
    }

    // Evaluate all candidates (parallelizable: each is independent), then
    // select sequentially with the original evolving-threshold rule.
    if (obs::enabled()) {
      LocalSearchMetrics::get().iterations.add();
      LocalSearchMetrics::get().moves_evaluated.add(moves.size());
    }
    // Per-index writes into move_cost: safe for any chunking, and the
    // sequential selection below reads them in canonical move order, so
    // the result never depends on the width. The grain is a fixed
    // constant; each move evaluation is O(open * clients).
    move_cost.assign(moves.size(), kInf);
    exec::parallel_for(
        moves.size(), /*grain=*/4,
        [&](std::size_t b, std::size_t e, std::size_t) {
          for (std::size_t m = b; m < e; ++m) {
            move_cost[m] = evaluate(oracle, open, moves[m].force_open,
                                    moves[m].force_close);
          }
        },
        threads);
    double best = current;
    std::size_t best_open = nf, best_close = nf;
    for (std::size_t m = 0; m < moves.size(); ++m) {
      if (move_cost[m] < best - options.min_improvement) {
        best = move_cost[m];
        best_open = moves[m].force_open;
        best_close = moves[m].force_close;
      }
    }

    if (best >= current - options.min_improvement) break;  // local optimum
    if (best_open < nf) open[best_open] = true;
    if (best_close < nf) open[best_close] = false;
    current = best;
  }

  std::vector<std::size_t> open_set;
  for (std::size_t i = 0; i < nf; ++i) {
    if (open[i]) open_set.push_back(i);
  }
  return assign_to_open(oracle, open_set);
}

FlSolution local_search(const FlInstance& instance, const FlSolution& initial,
                        const LocalSearchOptions& options) {
  const CostOracle oracle(instance);
  return local_search(oracle, initial, options);
}

FlSolution local_search_from_scratch(const FlInstance& instance,
                                     const LocalSearchOptions& options) {
  instance.validate();
  const CostOracle oracle(instance);
  // Start from the single facility with the cheapest (opening + service)
  // cost; local search opens the rest as needed.
  std::size_t best = 0;
  double best_cost = kInf;
  for (std::size_t i = 0; i < instance.facilities.size(); ++i) {
    const auto sol = assign_to_open(oracle, {i});
    if (sol.total_cost() < best_cost) {
      best_cost = sol.total_cost();
      best = i;
    }
  }
  return local_search(oracle, assign_to_open(oracle, {best}), options);
}

}  // namespace esharing::solver
