#include "solver/local_search.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <vector>

namespace esharing::solver {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Evaluate the total cost of an open set given precomputed connection
/// costs; returns infinity for an empty set.
double evaluate(const FlInstance& inst,
                const std::vector<std::vector<double>>& cost,
                const std::vector<bool>& open) {
  double total = 0.0;
  bool any = false;
  for (std::size_t i = 0; i < open.size(); ++i) {
    if (open[i]) {
      any = true;
      total += inst.facilities[i].opening_cost;
    }
  }
  if (!any) return kInf;
  for (std::size_t j = 0; j < inst.clients.size(); ++j) {
    double best = kInf;
    for (std::size_t i = 0; i < open.size(); ++i) {
      if (open[i]) best = std::min(best, cost[i][j]);
    }
    total += best;
  }
  return total;
}

}  // namespace

FlSolution local_search(const FlInstance& instance, const FlSolution& initial,
                        const LocalSearchOptions& options) {
  instance.validate();
  if (initial.open.empty()) {
    throw std::invalid_argument("local_search: empty initial open set");
  }
  const std::size_t nf = instance.facilities.size();
  const std::size_t nc = instance.clients.size();
  std::vector<std::vector<double>> cost(nf, std::vector<double>(nc));
  for (std::size_t i = 0; i < nf; ++i) {
    for (std::size_t j = 0; j < nc; ++j) {
      cost[i][j] = instance.connection_cost(i, j);
    }
  }

  std::vector<bool> open(nf, false);
  for (std::size_t i : initial.open) {
    if (i >= nf) {
      throw std::invalid_argument("local_search: facility index out of range");
    }
    open[i] = true;
  }
  double current = evaluate(instance, cost, open);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    double best = current;
    std::size_t best_open = nf, best_close = nf;

    // Open moves.
    for (std::size_t i = 0; i < nf; ++i) {
      if (open[i]) continue;
      open[i] = true;
      const double c = evaluate(instance, cost, open);
      open[i] = false;
      if (c < best - options.min_improvement) {
        best = c;
        best_open = i;
        best_close = nf;
      }
    }
    // Close moves.
    for (std::size_t i = 0; i < nf; ++i) {
      if (!open[i]) continue;
      open[i] = false;
      const double c = evaluate(instance, cost, open);
      open[i] = true;
      if (c < best - options.min_improvement) {
        best = c;
        best_open = nf;
        best_close = i;
      }
    }
    // Swap moves.
    if (options.allow_swaps) {
      for (std::size_t out = 0; out < nf; ++out) {
        if (!open[out]) continue;
        open[out] = false;
        for (std::size_t in = 0; in < nf; ++in) {
          if (open[in] || in == out) continue;
          open[in] = true;
          const double c = evaluate(instance, cost, open);
          open[in] = false;
          if (c < best - options.min_improvement) {
            best = c;
            best_open = in;
            best_close = out;
          }
        }
        open[out] = true;
      }
    }

    if (best >= current - options.min_improvement) break;  // local optimum
    if (best_open < nf) open[best_open] = true;
    if (best_close < nf) open[best_close] = false;
    current = best;
  }

  std::vector<std::size_t> open_set;
  for (std::size_t i = 0; i < nf; ++i) {
    if (open[i]) open_set.push_back(i);
  }
  return assign_to_open(instance, open_set);
}

FlSolution local_search_from_scratch(const FlInstance& instance,
                                     const LocalSearchOptions& options) {
  instance.validate();
  // Start from the single facility with the cheapest (opening + service)
  // cost; local search opens the rest as needed.
  std::size_t best = 0;
  double best_cost = kInf;
  for (std::size_t i = 0; i < instance.facilities.size(); ++i) {
    const auto sol = assign_to_open(instance, {i});
    if (sol.total_cost() < best_cost) {
      best_cost = sol.total_cost();
      best = i;
    }
  }
  return local_search(instance, assign_to_open(instance, {best}), options);
}

}  // namespace esharing::solver
