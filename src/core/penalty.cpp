#include "core/penalty.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace esharing::core {

const char* penalty_type_name(PenaltyType t) {
  switch (t) {
    case PenaltyType::kNone: return "NoPenalty";
    case PenaltyType::kTypeI: return "TypeI";
    case PenaltyType::kTypeII: return "TypeII";
    case PenaltyType::kTypeIII: return "TypeIII";
    case PenaltyType::kPolynomial: return "Polynomial";
  }
  return "???";
}

PenaltyFunction::PenaltyFunction(PenaltyType type, double tolerance,
                                 std::vector<double> coeffs)
    : type_(type), tolerance_(tolerance), coeffs_(std::move(coeffs)) {}

PenaltyFunction PenaltyFunction::none() {
  return PenaltyFunction(PenaltyType::kNone, 1.0, {});
}

namespace {
void require_tolerance(double tolerance) {
  if (!(tolerance > 0.0)) {
    throw std::invalid_argument("PenaltyFunction: tolerance must be positive");
  }
}
}  // namespace

PenaltyFunction PenaltyFunction::type1(double tolerance) {
  require_tolerance(tolerance);
  return PenaltyFunction(PenaltyType::kTypeI, tolerance, {});
}

PenaltyFunction PenaltyFunction::type2(double tolerance) {
  require_tolerance(tolerance);
  return PenaltyFunction(PenaltyType::kTypeII, tolerance, {});
}

PenaltyFunction PenaltyFunction::type3(double tolerance) {
  require_tolerance(tolerance);
  return PenaltyFunction(PenaltyType::kTypeIII, tolerance, {});
}

PenaltyFunction PenaltyFunction::polynomial(double tolerance,
                                            std::vector<double> coeffs) {
  require_tolerance(tolerance);
  if (coeffs.empty()) {
    throw std::invalid_argument("PenaltyFunction::polynomial: empty coefficients");
  }
  return PenaltyFunction(PenaltyType::kPolynomial, tolerance, std::move(coeffs));
}

PenaltyFunction PenaltyFunction::of(PenaltyType type, double tolerance) {
  switch (type) {
    case PenaltyType::kNone: return none();
    case PenaltyType::kTypeI: return type1(tolerance);
    case PenaltyType::kTypeII: return type2(tolerance);
    case PenaltyType::kTypeIII: return type3(tolerance);
    case PenaltyType::kPolynomial:
      throw std::invalid_argument(
          "PenaltyFunction::of: polynomial requires explicit coefficients");
  }
  throw std::invalid_argument("PenaltyFunction::of: unknown type");
}

double PenaltyFunction::operator()(double c) const {
  if (c < 0.0) throw std::invalid_argument("PenaltyFunction: negative cost");
  const double r = c / tolerance_;
  switch (type_) {
    case PenaltyType::kNone:
      return 1.0;
    case PenaltyType::kTypeI:
      return 1.0 / (r + 1.0);
    case PenaltyType::kTypeII:
      return r >= 1.0 ? 0.0 : 1.0 - r;
    case PenaltyType::kTypeIII:
      return std::exp(-r * r);
    case PenaltyType::kPolynomial: {
      double acc = 0.0;
      double pow_r = 1.0;
      for (double a : coeffs_) {
        acc += a * pow_r;
        pow_r *= r;
      }
      return std::clamp(acc, 0.0, 1.0);
    }
  }
  return 1.0;
}

double PenaltyFunction::derivative(double c) const {
  if (c < 0.0) throw std::invalid_argument("PenaltyFunction: negative cost");
  const double L = tolerance_;
  const double r = c / L;
  switch (type_) {
    case PenaltyType::kNone:
      return 0.0;
    case PenaltyType::kTypeI:
      return -1.0 / (L * (r + 1.0) * (r + 1.0));
    case PenaltyType::kTypeII:
      return r >= 1.0 ? 0.0 : -1.0 / L;
    case PenaltyType::kTypeIII:
      return -2.0 * c / (L * L) * std::exp(-r * r);
    case PenaltyType::kPolynomial: {
      double acc = 0.0;
      double pow_r = 1.0;
      for (std::size_t k = 1; k < coeffs_.size(); ++k) {
        acc += static_cast<double>(k) * coeffs_[k] * pow_r;
        pow_r *= r;
      }
      return acc / L;
    }
  }
  return 0.0;
}

std::string PenaltyFunction::name() const {
  return penalty_type_name(type_);
}

PenaltyType penalty_type_for_similarity(double similarity_percent) {
  if (similarity_percent >= 95.0) return PenaltyType::kTypeII;
  if (similarity_percent >= 80.0) return PenaltyType::kTypeIII;
  return PenaltyType::kTypeI;
}

}  // namespace esharing::core
