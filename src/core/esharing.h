#pragma once

/// \file esharing.h
/// The E-Sharing facade: the two-tier optimization framework of Fig. 3.
/// Tier one plans parking locations — a near-optimal offline (JMS) solution
/// on historical or predicted demand guides the online deviation-penalty
/// placer that serves live requests. Tier two builds incentive sessions
/// that aggregate low-battery bikes so the charging operator serves fewer
/// stops.
///
/// Typical flow (see examples/quickstart.cpp):
///   ESharing sys(config, seed);
///   sys.plan_offline(historical_demand_sites, opening_cost_fn);
///   sys.start_online(historical_destination_sample);
///   for (auto& request : stream) sys.handle_request(request.destination);
///   auto session = sys.make_incentive_session(fleet, bike_station);
///   ... offer rewards on pickups, then run_charging_round(...)

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

#include "core/charging_ops.h"
#include "core/deviation_placer.h"
#include "core/incentive.h"
#include "data/binning.h"
#include "energy/battery.h"
#include "solver/facility_location.h"
#include "solver/reopt.h"

namespace esharing::core {

struct ESharingConfig {
  DeviationPlacerConfig placer;
  IncentiveConfig incentive;
  OperatorConfig charging_operator;

  /// Fail fast on inconsistent parameters. Called by the ESharing
  /// constructor, so a bad config surfaces at construction with a message
  /// naming the offending field, the value it had, and why it is invalid —
  /// instead of deep inside the online phase.
  /// \throws std::invalid_argument on the first violated constraint.
  void validate() const;
};

class ESharing {
 public:
  ESharing(ESharingConfig config, std::uint64_t seed);

  /// Tier-one offline phase (Algorithm 1): solve the PLP on aggregated
  /// demand sites (historical or predicted arrivals per grid) with the
  /// given space-occupation cost field.
  /// \returns the near-optimal offline solution (also retained internally).
  /// \throws std::invalid_argument on empty sites.
  const solver::FlSolution& plan_offline(
      const std::vector<data::DemandSite>& sites,
      std::function<double(geo::Point)> opening_cost_fn);

  /// Incrementally re-optimize the offline plan against a fresh demand
  /// snapshot (the hourly landmark re-anchor of ROADMAP item 4): the
  /// retained ReoptimizationSession diffs the new sites against its
  /// versioned instance, patches the cost oracle and warm re-solves from
  /// the previous plan (never costlier than carrying it over; a snapshot
  /// identical to the current instance returns the cached solution
  /// bit-identically). The offline solution is updated, and when the
  /// online phase is running the placer's landmarks are re-anchored to
  /// the new plan (existing stations persist).
  /// \throws std::logic_error before plan_offline,
  ///         std::invalid_argument on empty sites.
  const solver::FlSolution& reanchor(const std::vector<data::DemandSite>& sites);

  /// The incremental re-optimization session behind plan_offline/reanchor.
  /// \throws std::logic_error before plan_offline.
  [[nodiscard]] const solver::ReoptimizationSession& reopt_session() const;

  /// Begin the online phase guided by the offline plan. `historical_sample`
  /// is the destination sample H(x, y) used by the KS test.
  /// \throws std::logic_error if plan_offline was not called.
  void start_online(std::vector<geo::Point> historical_sample);

  /// Tier-one online phase (Algorithm 2): process one live request.
  /// \throws std::logic_error if start_online was not called.
  solver::OnlineDecision handle_request(geo::Point destination,
                                        double weight = 1.0);

  /// Current parking locations (offline landmarks + online-established).
  /// \throws std::logic_error before plan_offline.
  [[nodiscard]] std::vector<geo::Point> parking_locations() const;

  [[nodiscard]] const solver::FlSolution& offline_solution() const;
  [[nodiscard]] const DeviationPenaltyPlacer& placer() const;
  [[nodiscard]] DeviationPenaltyPlacer& placer();
  [[nodiscard]] bool online_started() const { return placer_.has_value(); }

  /// Tier two (Algorithm 3): build an incentive session over the current
  /// parking set. `bike_station[b]` is the parking index (into
  /// parking_locations()) where bike b currently sits; only low-battery
  /// bikes enter the session.
  /// \throws std::invalid_argument if bike_station size differs from fleet.
  [[nodiscard]] IncentiveMechanism make_incentive_session(
      const energy::BikeFleet& fleet,
      const std::vector<std::size_t>& bike_station) const;

  /// Run the operator's charging round over the session's station state.
  [[nodiscard]] ChargingRoundResult charge(
      const IncentiveMechanism& session) const;

  /// Checkpoint the running online placer (versioned binary; see
  /// DeviationPenaltyPlacer::save). \throws std::logic_error before
  /// start_online.
  void save_placer(std::ostream& os) const;
  /// Replace the online placer with one restored from a save_placer blob.
  /// plan_offline must have been called (the restored placer reuses the
  /// retained opening-cost field). \throws std::logic_error before
  /// plan_offline, std::runtime_error on corrupt input.
  void restore_placer(std::istream& is);

  /// Checkpoint the incremental re-optimization session behind
  /// plan_offline/reanchor: the current (post-delta) instance plus the
  /// last solution — the warm-start state every future reanchor() builds
  /// on, so a restored system re-anchors bit-identically to one that
  /// lived through the original delta history. \throws std::logic_error
  /// before plan_offline.
  void save_reopt(std::ostream& os) const;
  /// Replace the session (and the cached offline plan) with one restored
  /// from a save_reopt blob. \throws std::logic_error before plan_offline,
  /// std::runtime_error on corrupt input.
  void restore_reopt(std::istream& is);

  [[nodiscard]] const ESharingConfig& config() const { return config_; }

 private:
  ESharingConfig config_;
  std::uint64_t seed_;
  std::function<double(geo::Point)> opening_cost_fn_;
  /// Owns {versioned instance, delta-aware oracle, last solution}; behind
  /// unique_ptr because the session is immovable (oracle points into it).
  std::unique_ptr<solver::ReoptimizationSession> reopt_;
  std::optional<solver::FlSolution> offline_;
  std::vector<geo::Point> offline_locations_;
  std::optional<DeviationPenaltyPlacer> placer_;
};

}  // namespace esharing::core
