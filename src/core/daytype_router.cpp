#include "core/daytype_router.h"

namespace esharing::core {

DayTypeRouter::DayTypeRouter(std::vector<geo::Point> weekday_landmarks,
                             std::vector<geo::Point> weekday_sample,
                             std::vector<geo::Point> weekend_landmarks,
                             std::vector<geo::Point> weekend_sample,
                             std::function<double(geo::Point)> opening_cost_fn,
                             const DeviationPlacerConfig& config,
                             std::uint64_t seed)
    : weekday_(std::move(weekday_landmarks), std::move(weekday_sample),
               opening_cost_fn, config, seed ^ 0x77eeda1ULL),
      weekend_(std::move(weekend_landmarks), std::move(weekend_sample),
               std::move(opening_cost_fn), config, seed ^ 0x77ee2e2dULL) {}

solver::OnlineDecision DayTypeRouter::process(data::Seconds when,
                                              geo::Point destination,
                                              double weight) {
  return data::is_weekend(when) ? weekend_.process(destination, weight)
                                : weekday_.process(destination, weight);
}

const DeviationPenaltyPlacer& DayTypeRouter::placer_for(
    data::Seconds when) const {
  return data::is_weekend(when) ? weekend_ : weekday_;
}

std::vector<geo::Point> DayTypeRouter::all_active_locations() const {
  auto out = weekday_.active_locations();
  const auto we = weekend_.active_locations();
  out.insert(out.end(), we.begin(), we.end());
  return out;
}

}  // namespace esharing::core
