#pragma once

/// \file thread_annotations.h
/// Clang Thread Safety Analysis attribute macros (ES_ prefix to avoid
/// clashing with other libraries' spellings). Under Clang with
/// `-Wthread-safety` (the ESHARING_THREAD_SAFETY CMake option turns it on
/// together with -Werror) the compiler proves at compile time that every
/// member annotated ES_GUARDED_BY is only touched with its mutex held and
/// that every ES_REQUIRES contract holds at each call site. On other
/// compilers the macros expand to nothing, so annotated code builds
/// unchanged under GCC.
///
/// The annotated primitives live in core/sync.h (es::Mutex, es::LockGuard,
/// es::UniqueLock, es::CondVar); raw std::mutex members cannot be analyzed,
/// so lock-protected state in this repo uses the wrappers exclusively —
/// the project lint and code review keep it that way.
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && (!defined(SWIG))
#define ES_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define ES_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off Clang
#endif

/// Marks a type as a lockable capability ("mutex" in diagnostics).
#define ES_CAPABILITY(x) ES_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define ES_SCOPED_CAPABILITY ES_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member may only be read or written while holding `x`.
#define ES_GUARDED_BY(x) ES_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* may only be accessed while holding `x`
/// (the pointer itself is unguarded, e.g. set once at construction).
#define ES_PT_GUARDED_BY(x) ES_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function requires the given capabilities to be held by the caller.
#define ES_REQUIRES(...) \
  ES_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function acquires the capability (caller must not already hold it).
#define ES_ACQUIRE(...) \
  ES_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function releases the capability (caller must hold it).
#define ES_RELEASE(...) \
  ES_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function may not be called while holding the given capabilities
/// (deadlock prevention for re-entrant call paths).
#define ES_EXCLUDES(...) \
  ES_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability (accessor pattern).
#define ES_RETURN_CAPABILITY(x) ES_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: disables analysis for one function. Every use must carry a
/// comment justifying why the analysis cannot see the invariant.
#define ES_NO_THREAD_SAFETY_ANALYSIS \
  ES_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
