#include "core/demand_forecast.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>

#include "exec/thread_pool.h"
#include "ml/arima.h"
#include "ml/batch.h"
#include "ml/gru.h"
#include "ml/lstm.h"
#include "ml/moving_average.h"
#include "ml/seasonal_naive.h"

namespace esharing::core {

namespace {

/// Both recurrent engines share the paper's lookback of 12 hours.
constexpr std::size_t kRnnLookback = 12;

bool is_rnn(ForecastEngine e) {
  return e == ForecastEngine::kLstm || e == ForecastEngine::kGru;
}

std::unique_ptr<ml::Forecaster> make_engine(const GridForecastConfig& cfg,
                                            std::uint64_t cell_seed) {
  switch (cfg.engine) {
    case ForecastEngine::kSeasonalNaive:
      return std::make_unique<ml::SeasonalNaiveForecaster>(24);
    case ForecastEngine::kMovingAverage:
      return std::make_unique<ml::MovingAverageForecaster>(24);
    case ForecastEngine::kArima:
      return std::make_unique<ml::ArimaForecaster>(8, 0);
    case ForecastEngine::kLstm: {
      ml::LstmConfig lc;
      lc.layers = 1;
      lc.hidden = cfg.rnn_hidden;
      lc.lookback = kRnnLookback;
      lc.epochs = cfg.rnn_epochs;
      lc.seed = cell_seed;
      return std::make_unique<ml::LstmForecaster>(lc);
    }
    case ForecastEngine::kGru: {
      ml::GruConfig gc;
      gc.layers = 1;
      gc.hidden = cfg.rnn_hidden;
      gc.lookback = kRnnLookback;
      gc.epochs = cfg.rnn_epochs;
      gc.seed = cell_seed;
      return std::make_unique<ml::GruForecaster>(gc);
    }
  }
  throw std::invalid_argument("forecast_grid_demand: unknown engine");
}

/// Non-negative horizon sum — negative hourly predictions are clamped
/// before aggregation, same as the paper's arrival counts.
double horizon_sum(const ml::Series& forecast) {
  double predicted = 0.0;
  for (double v : forecast) predicted += std::max(0.0, v);
  return predicted;
}

}  // namespace

void GridForecastConfig::validate() const {
  if (horizon_hours == 0) {
    throw std::invalid_argument(
        "GridForecastConfig: horizon_hours = 0 is invalid: the placement "
        "input needs at least one predicted hour");
  }
  if (is_rnn(engine)) {
    if (rnn_hidden <= 0) {
      throw std::invalid_argument(
          "GridForecastConfig: rnn_hidden = " + std::to_string(rnn_hidden) +
          " is invalid: the recurrent engines need at least one hidden unit");
    }
    if (rnn_epochs <= 0) {
      throw std::invalid_argument(
          "GridForecastConfig: rnn_epochs = " + std::to_string(rnn_epochs) +
          " is invalid: per-cell training needs at least one epoch");
    }
    if (rnn_batch && rnn_batch_epochs <= 0) {
      throw std::invalid_argument(
          "GridForecastConfig: rnn_batch_epochs = " +
          std::to_string(rnn_batch_epochs) +
          " is invalid: the batched runtime needs at least one full-batch "
          "Adam step (or set rnn_batch = false)");
    }
  }
}

const char* forecast_engine_name(ForecastEngine e) {
  switch (e) {
    case ForecastEngine::kSeasonalNaive: return "seasonal-naive";
    case ForecastEngine::kMovingAverage: return "moving-average";
    case ForecastEngine::kArima: return "arima";
    case ForecastEngine::kLstm: return "lstm";
    case ForecastEngine::kGru: return "gru";
  }
  return "???";
}

std::vector<data::DemandSite> GridForecast::sites(const geo::Grid& grid) const {
  if (predicted_arrivals.size() != grid.cell_count()) {
    throw std::invalid_argument("GridForecast::sites: grid size mismatch");
  }
  std::vector<data::DemandSite> out;
  for (std::size_t c = 0; c < predicted_arrivals.size(); ++c) {
    if (predicted_arrivals[c] > 0.0) {
      out.push_back({grid.centroid_of(grid.cell_at(c)), predicted_arrivals[c], c});
    }
  }
  return out;
}

GridForecast forecast_grid_demand(const data::DemandMatrix& history,
                                  const geo::Grid& grid,
                                  const GridForecastConfig& config) {
  config.validate();
  if (history.n_cells() != grid.cell_count()) {
    throw std::invalid_argument(
        "forecast_grid_demand: matrix/grid cell count mismatch");
  }
  if (history.n_hours() < 48) {
    throw std::invalid_argument(
        "forecast_grid_demand: need at least two days of history");
  }

  GridForecast result;
  result.predicted_arrivals.assign(history.n_cells(), 0.0);

  // Busy cells get a model; collect them in rank order (top_cells may
  // exceed the number of cells with any arrivals).
  const auto top = history.top_cells(config.top_cells);
  const auto horizon = static_cast<double>(config.horizon_hours);
  std::vector<std::size_t> busy_cell, busy_rank;
  std::vector<ml::Series> busy_series;
  std::vector<double> busy_rate;
  for (std::size_t rank = 0; rank < top.size(); ++rank) {
    const std::size_t cell = top[rank];
    auto series = history.cell_series(cell);
    double cell_total = 0.0;
    for (double v : series) cell_total += v;
    if (cell_total <= 0.0) continue;
    busy_cell.push_back(cell);
    busy_rank.push_back(rank);
    busy_rate.push_back(cell_total / static_cast<double>(series.size()));
    busy_series.push_back(std::move(series));
  }

  std::vector<double> busy_predicted(busy_cell.size(), 0.0);
  if (!busy_cell.empty() && is_rnn(config.engine) && config.rnn_batch) {
    // Batched shared-weight path: one fit over the pooled cells, then all
    // horizons advance in fused multi-cell passes.
    ml::batch::BatchRnnConfig bc;
    bc.kind = config.engine == ForecastEngine::kLstm
                  ? ml::batch::RnnKind::kLstm
                  : ml::batch::RnnKind::kGru;
    bc.layers = 1;
    bc.hidden = config.rnn_hidden;
    bc.lookback = kRnnLookback;
    bc.epochs = config.rnn_batch_epochs;
    bc.precision = config.rnn_int8 ? ml::batch::Precision::kInt8
                                   : ml::batch::Precision::kFp32;
    bc.seed = config.seed;
    ml::batch::BatchRnn model(bc);
    model.fit(busy_series);
    const auto forecasts = model.forecast(busy_series, config.horizon_hours);
    for (std::size_t i = 0; i < busy_cell.size(); ++i) {
      busy_predicted[i] = horizon_sum(forecasts[i]);
    }
  } else {
    // One model per busy cell; the fits are independent, so they fan out
    // over the exec pool (per-index writes, seeds fixed by rank — the
    // results are identical at every pool width).
    exec::parallel_for(
        busy_cell.size(), /*grain=*/1,
        [&](std::size_t b, std::size_t e, std::size_t) {
          for (std::size_t i = b; i < e; ++i) {
            auto engine = make_engine(config, config.seed + busy_rank[i]);
            engine->fit(busy_series[i]);
            busy_predicted[i] = horizon_sum(
                engine->forecast(busy_series[i], config.horizon_hours));
          }
        });
  }

  // Sequential rank-order fold of the modeled aggregates (deterministic
  // trend regardless of which lane fit which cell).
  double modeled_history_rate = 0.0;  // arrivals/hour over history
  double modeled_predicted = 0.0;     // arrivals over the horizon
  std::vector<bool> modeled(history.n_cells(), false);
  for (std::size_t i = 0; i < busy_cell.size(); ++i) {
    result.predicted_arrivals[busy_cell[i]] = busy_predicted[i];
    modeled[busy_cell[i]] = true;
    ++result.modeled_cells;
    modeled_history_rate += busy_rate[i];
    modeled_predicted += busy_predicted[i];
  }

  // Tail cells: historical hourly mean scaled by the busy cells' predicted
  // trend (predicted volume / history-rate-equivalent volume). Disjoint
  // per-cell writes; `modeled` is read-only from here on.
  const double expected_modeled = modeled_history_rate * horizon;
  const double trend =
      expected_modeled > 0.0 ? modeled_predicted / expected_modeled : 1.0;
  exec::parallel_for(
      history.n_cells(), /*grain=*/64,
      [&](std::size_t b, std::size_t e, std::size_t) {
        for (std::size_t cell = b; cell < e; ++cell) {
          if (modeled[cell]) continue;
          const auto series = history.cell_series(cell);
          double total = 0.0;
          for (double v : series) total += v;
          result.predicted_arrivals[cell] =
              total / static_cast<double>(series.size()) * horizon * trend;
        }
      });
  return result;
}

}  // namespace esharing::core
