#include "core/demand_forecast.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "ml/arima.h"
#include "ml/gru.h"
#include "ml/lstm.h"
#include "ml/moving_average.h"
#include "ml/seasonal_naive.h"

namespace esharing::core {

namespace {

std::unique_ptr<ml::Forecaster> make_engine(const GridForecastConfig& cfg,
                                            std::uint64_t cell_seed) {
  switch (cfg.engine) {
    case ForecastEngine::kSeasonalNaive:
      return std::make_unique<ml::SeasonalNaiveForecaster>(24);
    case ForecastEngine::kMovingAverage:
      return std::make_unique<ml::MovingAverageForecaster>(24);
    case ForecastEngine::kArima:
      return std::make_unique<ml::ArimaForecaster>(8, 0);
    case ForecastEngine::kLstm: {
      ml::LstmConfig lc;
      lc.layers = 1;
      lc.hidden = cfg.rnn_hidden;
      lc.lookback = 12;
      lc.epochs = cfg.rnn_epochs;
      lc.seed = cell_seed;
      return std::make_unique<ml::LstmForecaster>(lc);
    }
    case ForecastEngine::kGru: {
      ml::GruConfig gc;
      gc.layers = 1;
      gc.hidden = cfg.rnn_hidden;
      gc.lookback = 12;
      gc.epochs = cfg.rnn_epochs;
      gc.seed = cell_seed;
      return std::make_unique<ml::GruForecaster>(gc);
    }
  }
  throw std::invalid_argument("forecast_grid_demand: unknown engine");
}

}  // namespace

const char* forecast_engine_name(ForecastEngine e) {
  switch (e) {
    case ForecastEngine::kSeasonalNaive: return "seasonal-naive";
    case ForecastEngine::kMovingAverage: return "moving-average";
    case ForecastEngine::kArima: return "arima";
    case ForecastEngine::kLstm: return "lstm";
    case ForecastEngine::kGru: return "gru";
  }
  return "???";
}

std::vector<data::DemandSite> GridForecast::sites(const geo::Grid& grid) const {
  if (predicted_arrivals.size() != grid.cell_count()) {
    throw std::invalid_argument("GridForecast::sites: grid size mismatch");
  }
  std::vector<data::DemandSite> out;
  for (std::size_t c = 0; c < predicted_arrivals.size(); ++c) {
    if (predicted_arrivals[c] > 0.0) {
      out.push_back({grid.centroid_of(grid.cell_at(c)), predicted_arrivals[c], c});
    }
  }
  return out;
}

GridForecast forecast_grid_demand(const data::DemandMatrix& history,
                                  const geo::Grid& grid,
                                  const GridForecastConfig& config) {
  if (history.n_cells() != grid.cell_count()) {
    throw std::invalid_argument(
        "forecast_grid_demand: matrix/grid cell count mismatch");
  }
  if (history.n_hours() < 48) {
    throw std::invalid_argument(
        "forecast_grid_demand: need at least two days of history");
  }
  if (config.horizon_hours == 0) {
    throw std::invalid_argument("forecast_grid_demand: zero horizon");
  }

  GridForecast result;
  result.predicted_arrivals.assign(history.n_cells(), 0.0);

  // Busy cells get their own model; track their aggregate trend for the
  // tail fallback.
  const auto top = history.top_cells(config.top_cells);
  const auto horizon = static_cast<double>(config.horizon_hours);
  double modeled_history_rate = 0.0;  // arrivals/hour over history
  double modeled_predicted = 0.0;     // arrivals over the horizon
  std::vector<bool> modeled(history.n_cells(), false);
  for (std::size_t rank = 0; rank < top.size(); ++rank) {
    const std::size_t cell = top[rank];
    const auto series = history.cell_series(cell);
    double cell_total = 0.0;
    for (double v : series) cell_total += v;
    if (cell_total <= 0.0) continue;  // top_cells may exceed the busy count

    auto engine = make_engine(config, config.seed + rank);
    engine->fit(series);
    double predicted = 0.0;
    for (double v : engine->forecast(series, config.horizon_hours)) {
      predicted += std::max(0.0, v);
    }
    result.predicted_arrivals[cell] = predicted;
    modeled[cell] = true;
    ++result.modeled_cells;
    modeled_history_rate += cell_total / static_cast<double>(series.size());
    modeled_predicted += predicted;
  }

  // Tail cells: historical hourly mean scaled by the busy cells' predicted
  // trend (predicted volume / history-rate-equivalent volume).
  const double expected_modeled = modeled_history_rate * horizon;
  const double trend =
      expected_modeled > 0.0 ? modeled_predicted / expected_modeled : 1.0;
  for (std::size_t cell = 0; cell < history.n_cells(); ++cell) {
    if (modeled[cell]) continue;
    const auto series = history.cell_series(cell);
    double total = 0.0;
    for (double v : series) total += v;
    result.predicted_arrivals[cell] =
        total / static_cast<double>(series.size()) * horizon * trend;
  }
  return result;
}

}  // namespace esharing::core
