#include "core/deviation_placer.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "data/wire.h"
#include "obs/registry.h"
#include "stats/ks2d.h"

namespace esharing::core {

using geo::Point;

namespace {

struct PlacerMetrics {
  obs::Counter& requests;
  obs::Counter& stations_opened;
  obs::Counter& stations_removed;
  obs::Counter& ks_tests;
  obs::Counter& penalty_switches;
  obs::Counter& cost_doublings;
  obs::Counter& reanchors;
  obs::Gauge& cost_scale;
  obs::Gauge& last_similarity;

  static PlacerMetrics& get() {
    static PlacerMetrics m{
        obs::Registry::global().counter("core.placer.requests"),
        obs::Registry::global().counter("core.placer.stations_opened"),
        obs::Registry::global().counter("core.placer.stations_removed"),
        obs::Registry::global().counter("core.placer.ks_tests"),
        obs::Registry::global().counter("core.placer.penalty_switches"),
        obs::Registry::global().counter("core.placer.cost_doublings"),
        obs::Registry::global().counter("core.placer.reanchors"),
        obs::Registry::global().gauge("core.placer.cost_scale"),
        obs::Registry::global().gauge("core.placer.last_similarity"),
    };
    return m;
  }
};

}  // namespace

DeviationPenaltyPlacer::DeviationPenaltyPlacer(
    std::vector<Point> offline_parkings, std::vector<Point> historical_sample,
    std::function<double(Point)> opening_cost_fn, DeviationPlacerConfig config,
    std::uint64_t seed)
    : config_(config),
      opening_cost_fn_(std::move(opening_cost_fn)),
      rng_(seed),
      k_(offline_parkings.size()),
      penalty_(PenaltyFunction::none()),
      history_(std::move(historical_sample)) {
  if (offline_parkings.empty() ||
      (offline_parkings.size() < 2 && !(config_.w_star_override > 0.0))) {
    throw std::invalid_argument(
        "DeviationPenaltyPlacer: need >= 2 offline landmarks (w* undefined) "
        "or a positive w_star_override");
  }
  if (!(config_.beta >= 1.0)) {
    throw std::invalid_argument("DeviationPenaltyPlacer: beta must be >= 1");
  }
  if (!(config_.tolerance > 0.0)) {
    throw std::invalid_argument("DeviationPenaltyPlacer: tolerance must be positive");
  }
  if (!opening_cost_fn_) {
    throw std::invalid_argument("DeviationPenaltyPlacer: null opening cost fn");
  }
  penalty_ = PenaltyFunction::of(config_.initial_penalty, config_.tolerance);

  // Algorithm 2 line 3: w* = min pairwise landmark distance / 2 (or the
  // caller's override for degenerate landmark sets). Indexed
  // nearest-neighbor queries replace the former O(k^2) pairwise loop.
  double w_star = config_.w_star_override;
  if (!(w_star > 0.0)) {
    w_star = geo::min_pairwise_distance(offline_parkings) / 2.0;
  }
  // Line 4: w*/k seeds the effective opening cost (see the header note);
  // subsequent doublings multiply this scale. Per-location base costs act
  // relatively through reference_f_.
  reference_f_ = 0.0;
  for (Point p : offline_parkings) reference_f_ += opening_cost_fn_(p);
  reference_f_ /= static_cast<double>(offline_parkings.size());
  if (!(reference_f_ > 0.0)) reference_f_ = 1.0;
  if (config_.initial_scale_override > 0.0) {
    scale_ = config_.initial_scale_override;
  } else {
    // gamma * w*/k, floored at the mean landmark opening cost: dense
    // landmark sets make w*/k arbitrarily small, and an opening scale far
    // below the real space cost lets long request streams over-build
    // before the beta*k doubling can catch up.
    scale_ = std::max({config_.initial_scale_multiplier * w_star /
                           static_cast<double>(k_),
                       reference_f_, std::numeric_limits<double>::min()});
  }

  stations_.reserve(offline_parkings.size());
  for (Point p : offline_parkings) {
    stations_.push_back({p, /*online_opened=*/false, /*active=*/true});
    station_index_.insert(p);
  }
  landmark_index_ = geo::SpatialIndex(offline_parkings);
  landmarks_ = std::move(offline_parkings);
}

double DeviationPenaltyPlacer::deviation(Point p) const {
  return geo::distance(landmarks_[landmark_index_.nearest(p)], p);
}

std::size_t DeviationPenaltyPlacer::nearest_active(Point p) const {
  const std::size_t i = station_index_.nearest(p);
  return i == geo::SpatialIndex::npos ? stations_.size() : i;
}

solver::OnlineDecision DeviationPenaltyPlacer::process(Point dest,
                                                       double weight) {
  if (!(weight >= 0.0)) {
    throw std::invalid_argument("DeviationPenaltyPlacer::process: negative weight");
  }
  ++requests_seen_;
  if (obs::enabled()) PlacerMetrics::get().requests.add();
  window_.push_back(dest);
  while (window_.size() > config_.window_capacity) window_.pop_front();

  solver::OnlineDecision decision;
  const std::size_t nearest = nearest_active(dest);
  if (nearest == stations_.size()) {
    // All stations were removed; re-establish one here unconditionally.
    stations_.push_back({dest, true, true});
    station_index_.insert(dest);
    decision.opened = true;
    decision.facility = stations_.size() - 1;
    if (obs::enabled()) PlacerMetrics::get().stations_opened.add();
    return decision;
  }

  const double c = weight * geo::distance(stations_[nearest].location, dest);
  const double f = opening_cost_fn_(dest) / reference_f_ * scale_;
  const double prob = std::min(penalty_(deviation(dest)) * c / f, 1.0);
  const bool allowed =
      !config_.placement_filter || config_.placement_filter(dest);
  if (allowed && rng_.bernoulli(prob)) {
    stations_.push_back({dest, true, true});
    station_index_.insert(dest);
    decision.opened = true;
    decision.facility = stations_.size() - 1;
    if (obs::enabled()) PlacerMetrics::get().stations_opened.add();
    // Algorithm 2 lines 6-8: count openings; double f every beta*k opens.
    if (static_cast<double>(++opens_since_double_) >=
        config_.beta * static_cast<double>(k_)) {
      opens_since_double_ = 0;
      scale_ *= 2.0;
      if (obs::enabled()) {
        PlacerMetrics::get().cost_doublings.add();
        PlacerMetrics::get().cost_scale.set(scale_);
        obs::Registry::global().emit(
            "placer.cost_doubling",
            {{"scale", scale_}, {"requests", requests_seen_}});
      }
      maybe_run_ks_test();  // lines 9-10 sit inside the doubling branch
    }
  } else {
    decision.facility = nearest;
    decision.connection_cost = c;
    connection_cost_ += c;
  }

  if (config_.ks_period > 0 && requests_seen_ % config_.ks_period == 0) {
    maybe_run_ks_test();
  }
  return decision;
}

void DeviationPenaltyPlacer::maybe_run_ks_test() {
  if (history_.empty() || window_.size() < config_.ks_min_samples) return;
  const std::vector<Point> current(window_.begin(), window_.end());
  const auto result = stats::ks2d_test(history_, current);
  last_similarity_ = result.similarity;
  if (obs::enabled()) {
    PlacerMetrics::get().ks_tests.add();
    PlacerMetrics::get().last_similarity.set(result.similarity);
  }
  if (config_.adaptive_type) {
    const PenaltyType wanted = penalty_type_for_similarity(result.similarity);
    if (wanted != penalty_.type()) {
      if (obs::enabled()) {
        PlacerMetrics::get().penalty_switches.add();
        obs::Registry::global().emit(
            "placer.penalty_switch",
            {{"similarity", result.similarity},
             {"from", penalty_type_name(penalty_.type())},
             {"to", penalty_type_name(wanted)}});
      }
      penalty_ = PenaltyFunction::of(wanted, config_.tolerance);
    }
  }
}

namespace {
namespace wire = data::wire;
// Placer checkpoint blob: magic + layout version. Bump the version on any
// field change; restore() rejects unknown versions instead of misreading.
constexpr std::uint64_t kPlacerMagic = 0x45504c4143455231ULL;  // "EPLACER1"
// v2: the landmark set is serialized explicitly (+ the reanchor counter).
// v1 recovered it as "the first k stations", which reanchor() breaks — a
// re-anchored landmark can be any station, or share a location with a
// removed one.
constexpr std::uint64_t kPlacerVersion = 2;
}  // namespace

void DeviationPenaltyPlacer::save(std::ostream& os) const {
  wire::write_u64(os, kPlacerMagic);
  wire::write_u64(os, kPlacerVersion);
  // Config scalars that must match on restore (behavioral fingerprint).
  wire::write_f64(os, config_.beta);
  wire::write_f64(os, config_.tolerance);
  wire::write_u64(os, config_.ks_period);
  wire::write_u64(os, config_.window_capacity);

  wire::write_u64(os, k_);
  for (Point p : landmarks_) {
    wire::write_f64(os, p.x);
    wire::write_f64(os, p.y);
  }
  wire::write_u64(os, stations_.size());
  for (const Station& s : stations_) {
    wire::write_f64(os, s.location.x);
    wire::write_f64(os, s.location.y);
    wire::write_u8(os, s.online_opened ? 1 : 0);
    wire::write_u8(os, s.active ? 1 : 0);
  }
  wire::write_f64(os, reference_f_);
  wire::write_f64(os, scale_);
  wire::write_u64(os, opens_since_double_);
  wire::write_u8(os, static_cast<std::uint8_t>(penalty_.type()));
  wire::write_u64(os, history_.size());
  for (Point p : history_) {
    wire::write_f64(os, p.x);
    wire::write_f64(os, p.y);
  }
  wire::write_u64(os, window_.size());
  for (Point p : window_) {
    wire::write_f64(os, p.x);
    wire::write_f64(os, p.y);
  }
  wire::write_f64(os, connection_cost_);
  wire::write_f64(os, last_similarity_);
  wire::write_u64(os, requests_seen_);
  wire::write_u64(os, reanchors_);
  // mt19937_64 state round-trips exactly through its text representation.
  std::ostringstream engine_text;
  engine_text << rng_.engine();
  wire::write_string(os, engine_text.str());
}

DeviationPenaltyPlacer DeviationPenaltyPlacer::restore(
    std::istream& is, std::function<double(geo::Point)> opening_cost_fn,
    DeviationPlacerConfig config) {
  constexpr std::uint64_t kSaneMax = 1ULL << 32;
  if (wire::read_u64(is) != kPlacerMagic) {
    throw std::runtime_error(
        "DeviationPenaltyPlacer::restore: bad magic — not a placer "
        "checkpoint blob");
  }
  const std::uint64_t version = wire::read_u64(is);
  if (version != kPlacerVersion) {
    throw std::runtime_error(
        "DeviationPenaltyPlacer::restore: unsupported checkpoint version " +
        std::to_string(version) + " (this build reads " +
        std::to_string(kPlacerVersion) + ")");
  }
  const double beta = wire::read_f64(is);
  const double tolerance = wire::read_f64(is);
  const std::uint64_t ks_period = wire::read_u64(is);
  const std::uint64_t window_capacity = wire::read_u64(is);
  if (beta != config.beta || tolerance != config.tolerance ||
      ks_period != config.ks_period ||
      window_capacity != config.window_capacity) {
    throw std::runtime_error(
        "DeviationPenaltyPlacer::restore: config mismatch — the checkpoint "
        "was written with beta/tolerance/ks_period/window_capacity = " +
        std::to_string(beta) + "/" + std::to_string(tolerance) + "/" +
        std::to_string(ks_period) + "/" + std::to_string(window_capacity));
  }

  const std::uint64_t k = wire::read_count(is, kSaneMax);
  if (k == 0) {
    throw std::runtime_error(
        "DeviationPenaltyPlacer::restore: corrupt landmark count 0");
  }
  // v2 carries the landmark set explicitly — after a reanchor() the
  // landmarks are not "the first k stations" any more.
  std::vector<Point> landmarks;
  landmarks.reserve(k);
  for (std::uint64_t i = 0; i < k; ++i) {
    Point p;
    p.x = wire::read_f64(is);
    p.y = wire::read_f64(is);
    landmarks.push_back(p);
  }
  const std::uint64_t n_stations = wire::read_count(is, kSaneMax);
  std::vector<Station> stations;
  stations.reserve(n_stations);
  for (std::uint64_t i = 0; i < n_stations; ++i) {
    Station s;
    s.location.x = wire::read_f64(is);
    s.location.y = wire::read_f64(is);
    s.online_opened = wire::read_u8(is) != 0;
    s.active = wire::read_u8(is) != 0;
    stations.push_back(s);
  }

  // Rebuild through the normal constructor (validation + landmark index),
  // then overwrite the mutable state.
  DeviationPenaltyPlacer placer(landmarks, {}, std::move(opening_cost_fn),
                                config, /*seed=*/0);

  placer.stations_.clear();
  placer.station_index_ = geo::SpatialIndex();
  for (const Station& s : stations) {
    placer.stations_.push_back(s);
    placer.station_index_.insert(s.location);
  }
  // Deactivations replay after all inserts; the spatial-index contract
  // (results depend only on the insert/deactivate history's outcome, ids
  // are insertion order) makes queries identical to the original instance.
  for (std::size_t i = 0; i < placer.stations_.size(); ++i) {
    if (!placer.stations_[i].active) placer.station_index_.deactivate(i);
  }

  placer.reference_f_ = wire::read_f64(is);
  placer.scale_ = wire::read_f64(is);
  placer.opens_since_double_ = wire::read_u64(is);
  const std::uint8_t penalty_raw = wire::read_u8(is);
  if (penalty_raw > static_cast<std::uint8_t>(PenaltyType::kTypeIII)) {
    throw std::runtime_error(
        "DeviationPenaltyPlacer::restore: corrupt penalty type " +
        std::to_string(penalty_raw));
  }
  placer.penalty_ =
      PenaltyFunction::of(static_cast<PenaltyType>(penalty_raw),
                          config.tolerance);
  const std::uint64_t n_history = wire::read_count(is, kSaneMax);
  placer.history_.clear();
  placer.history_.reserve(n_history);
  for (std::uint64_t i = 0; i < n_history; ++i) {
    Point p;
    p.x = wire::read_f64(is);
    p.y = wire::read_f64(is);
    placer.history_.push_back(p);
  }
  const std::uint64_t n_window = wire::read_count(is, kSaneMax);
  placer.window_.clear();
  for (std::uint64_t i = 0; i < n_window; ++i) {
    Point p;
    p.x = wire::read_f64(is);
    p.y = wire::read_f64(is);
    placer.window_.push_back(p);
  }
  placer.connection_cost_ = wire::read_f64(is);
  placer.last_similarity_ = wire::read_f64(is);
  placer.requests_seen_ = wire::read_u64(is);
  placer.reanchors_ = wire::read_u64(is);
  std::istringstream engine_text(wire::read_string(is));
  engine_text >> placer.rng_.engine();
  if (engine_text.fail()) {
    throw std::runtime_error(
        "DeviationPenaltyPlacer::restore: corrupt RNG engine state");
  }
  return placer;
}

void DeviationPenaltyPlacer::reanchor(const std::vector<Point>& new_landmarks) {
  // Unlike construction, no >= 2 restriction: w* only seeds the initial
  // opening scale, and the scale carries over a re-anchor — a warm
  // re-solve that collapses to a single landmark is a valid plan.
  if (new_landmarks.empty()) {
    throw std::invalid_argument(
        "DeviationPenaltyPlacer::reanchor: empty landmark set");
  }
  // Establish stations for landmarks the network does not serve yet
  // (exact-location match against active stations; station count stays
  // small, so the quadratic scan is cheap next to the re-solve that
  // produced the landmarks).
  for (Point p : new_landmarks) {
    bool present = false;
    for (const Station& s : stations_) {
      if (s.active && s.location.x == p.x && s.location.y == p.y) {
        present = true;
        break;
      }
    }
    if (!present) {
      stations_.push_back({p, /*online_opened=*/false, /*active=*/true});
      station_index_.insert(p);
      if (obs::enabled()) PlacerMetrics::get().stations_opened.add();
    }
  }
  landmark_index_ = geo::SpatialIndex(new_landmarks);
  landmarks_ = new_landmarks;
  k_ = landmarks_.size();
  // Landmark-derived base cost follows the new set; the adapted opening
  // scale and the doubling counter deliberately carry over (see header).
  reference_f_ = 0.0;
  for (Point p : landmarks_) reference_f_ += opening_cost_fn_(p);
  reference_f_ /= static_cast<double>(k_);
  if (!(reference_f_ > 0.0)) reference_f_ = 1.0;
  ++reanchors_;
  if (obs::enabled()) PlacerMetrics::get().reanchors.add();
}

void DeviationPenaltyPlacer::remove_station(std::size_t index) {
  if (index >= stations_.size()) {
    throw std::out_of_range("DeviationPenaltyPlacer::remove_station");
  }
  if (!stations_[index].active) return;
  if (num_active() == 1) {
    throw std::logic_error(
        "DeviationPenaltyPlacer::remove_station: cannot remove last station");
  }
  stations_[index].active = false;
  station_index_.deactivate(index);
  if (obs::enabled()) PlacerMetrics::get().stations_removed.add();
}

std::size_t DeviationPenaltyPlacer::num_active() const {
  return static_cast<std::size_t>(
      std::count_if(stations_.begin(), stations_.end(),
                    [](const Station& s) { return s.active; }));
}

std::size_t DeviationPenaltyPlacer::num_online_opened() const {
  return static_cast<std::size_t>(
      std::count_if(stations_.begin(), stations_.end(), [](const Station& s) {
        return s.active && s.online_opened;
      }));
}

std::vector<Point> DeviationPenaltyPlacer::active_locations() const {
  std::vector<Point> out;
  out.reserve(stations_.size());
  for (const Station& s : stations_) {
    if (s.active) out.push_back(s.location);
  }
  return out;
}

double DeviationPenaltyPlacer::total_opening_cost() const {
  double sum = 0.0;
  for (const Station& s : stations_) {
    if (s.active) sum += opening_cost_fn_(s.location);
  }
  return sum;
}

}  // namespace esharing::core
