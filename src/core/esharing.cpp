#include "core/esharing.h"

#include <stdexcept>

#include "data/wire.h"
#include "obs/registry.h"
#include "obs/scoped_timer.h"
#include "solver/jms_greedy.h"

namespace esharing::core {

using geo::Point;

namespace {

[[noreturn]] void config_fail(const std::string& field, double got,
                              const std::string& why) {
  throw std::invalid_argument("ESharingConfig: " + field + " = " +
                              std::to_string(got) + " is invalid: " + why);
}

}  // namespace

void ESharingConfig::validate() const {
  if (!(placer.beta >= 1.0)) {
    config_fail("placer.beta", placer.beta,
                "the opening scale doubles every beta*k openings, so beta "
                "must be >= 1");
  }
  if (!(placer.tolerance > 0.0)) {
    config_fail("placer.tolerance", placer.tolerance,
                "the penalty tolerance L is a distance in meters and must "
                "be positive");
  }
  if (placer.window_capacity == 0) {
    config_fail("placer.window_capacity", 0.0,
                "the KS sliding window must hold at least one destination");
  }
  if (placer.ks_min_samples == 0) {
    config_fail("placer.ks_min_samples", 0.0,
                "the KS test needs at least one window sample; use "
                "adaptive_type=false to disable penalty switching instead");
  }
  if (!(placer.w_star_override >= 0.0)) {
    config_fail("placer.w_star_override", placer.w_star_override,
                "must be 0 (compute w* from the landmarks) or positive");
  }
  if (!(placer.initial_scale_override >= 0.0)) {
    config_fail("placer.initial_scale_override", placer.initial_scale_override,
                "must be 0 (derive the scale from gamma * w*/k) or positive");
  }
  if (!(placer.initial_scale_override > 0.0) &&
      !(placer.initial_scale_multiplier > 0.0)) {
    config_fail("placer.initial_scale_multiplier",
                placer.initial_scale_multiplier,
                "gamma must be positive when no initial_scale_override is "
                "given, or the initial opening scale collapses to zero");
  }
  if (!(incentive.alpha >= 0.0 && incentive.alpha <= 1.0)) {
    config_fail("incentive.alpha", incentive.alpha,
                "the incentive level is a fraction of the saving and must "
                "lie in [0, 1] (0 disables offers)");
  }
  if (!(incentive.mileage_slack_m >= 0.0)) {
    config_fail("incentive.mileage_slack_m", incentive.mileage_slack_m,
                "the |d(i,k) - d(i,j)| tolerance is a distance and cannot "
                "be negative");
  }
  if (incentive.max_sequence_position == 0) {
    config_fail("incentive.max_sequence_position", 0.0,
                "the offer value uses a 1-based sequence position, so the "
                "cap must be >= 1");
  }
  if (!(incentive.costs.service_cost_q >= 0.0)) {
    config_fail("incentive.costs.service_cost_q",
                incentive.costs.service_cost_q,
                "per-stop service cost cannot be negative");
  }
  if (!(incentive.costs.delay_cost_d >= 0.0)) {
    config_fail("incentive.costs.delay_cost_d", incentive.costs.delay_cost_d,
                "per-position delay cost cannot be negative");
  }
  if (!(incentive.costs.energy_cost_b >= 0.0)) {
    config_fail("incentive.costs.energy_cost_b", incentive.costs.energy_cost_b,
                "per-bike charging cost cannot be negative");
  }
  if (!(charging_operator.speed_mps > 0.0)) {
    config_fail("charging_operator.speed_mps", charging_operator.speed_mps,
                "the service vehicle must move to reach any station");
  }
  if (!(charging_operator.stop_overhead_s >= 0.0)) {
    config_fail("charging_operator.stop_overhead_s",
                charging_operator.stop_overhead_s,
                "per-stop overhead is a duration and cannot be negative");
  }
  if (!(charging_operator.charge_time_s >= 0.0)) {
    config_fail("charging_operator.charge_time_s",
                charging_operator.charge_time_s,
                "per-stop charge time is a duration and cannot be negative");
  }
  if (!(charging_operator.work_seconds > 0.0)) {
    config_fail("charging_operator.work_seconds",
                charging_operator.work_seconds,
                "a non-positive shift means the operator can never serve a "
                "single stop");
  }
}

ESharing::ESharing(ESharingConfig config, std::uint64_t seed)
    : config_(config), seed_(seed) {
  config_.validate();
}

const solver::FlSolution& ESharing::plan_offline(
    const std::vector<data::DemandSite>& sites,
    std::function<double(Point)> opening_cost_fn) {
  if (sites.empty()) {
    throw std::invalid_argument("ESharing::plan_offline: no demand sites");
  }
  if (!opening_cost_fn) {
    throw std::invalid_argument("ESharing::plan_offline: null opening cost fn");
  }
  opening_cost_fn_ = std::move(opening_cost_fn);

  std::vector<solver::FlClient> clients;
  std::vector<double> costs;
  clients.reserve(sites.size());
  costs.reserve(sites.size());
  for (const auto& site : sites) {
    clients.push_back({site.location, site.arrivals});
    costs.push_back(opening_cost_fn_(site.location));
  }
  auto instance = solver::colocated_instance(std::move(clients),
                                             std::move(costs));
  {
    const obs::ScopedTimer timer(
        obs::Registry::global().histogram("core.esharing.plan_offline_seconds"));
    // The session's construction cold solve IS the plan (bit-identical to
    // the former direct jms_greedy call); it stays alive so reanchor() can
    // warm re-solve against demand drift.
    reopt_ = std::make_unique<solver::ReoptimizationSession>(
        std::move(instance), solver::ReoptOptions{}, opening_cost_fn_);
    offline_ = reopt_->solution();
  }
  offline_locations_.clear();
  for (std::size_t f : offline_->open) {
    offline_locations_.push_back(reopt_->instance().facilities[f].location);
  }
  placer_.reset();  // a new plan invalidates any running online phase
  return *offline_;
}

const solver::FlSolution& ESharing::reanchor(
    const std::vector<data::DemandSite>& sites) {
  if (reopt_ == nullptr) {
    throw std::logic_error("ESharing::reanchor: plan_offline first");
  }
  if (sites.empty()) {
    throw std::invalid_argument("ESharing::reanchor: no demand sites");
  }
  std::vector<solver::FlClient> target;
  target.reserve(sites.size());
  for (const auto& site : sites) {
    target.push_back({site.location, site.arrivals});
  }
  {
    const obs::ScopedTimer timer(
        obs::Registry::global().histogram("core.esharing.reanchor_seconds"));
    offline_ = reopt_->reoptimize_to(target);
  }
  offline_locations_.clear();
  for (std::size_t f : offline_->open) {
    offline_locations_.push_back(reopt_->instance().facilities[f].location);
  }
  if (placer_.has_value()) placer_->reanchor(offline_locations_);
  return *offline_;
}

const solver::ReoptimizationSession& ESharing::reopt_session() const {
  if (reopt_ == nullptr) {
    throw std::logic_error("ESharing::reopt_session: plan_offline first");
  }
  return *reopt_;
}

void ESharing::start_online(std::vector<Point> historical_sample) {
  if (!offline_.has_value()) {
    throw std::logic_error("ESharing::start_online: plan_offline first");
  }
  placer_.emplace(offline_locations_, std::move(historical_sample),
                  opening_cost_fn_, config_.placer, seed_ ^ 0x9e3779b97f4a7c15ULL);
}

solver::OnlineDecision ESharing::handle_request(Point destination,
                                                double weight) {
  if (!placer_.has_value()) {
    throw std::logic_error("ESharing::handle_request: start_online first");
  }
  return placer_->process(destination, weight);
}

std::vector<Point> ESharing::parking_locations() const {
  if (placer_.has_value()) return placer_->active_locations();
  if (offline_.has_value()) return offline_locations_;
  throw std::logic_error("ESharing::parking_locations: no plan yet");
}

const solver::FlSolution& ESharing::offline_solution() const {
  if (!offline_.has_value()) {
    throw std::logic_error("ESharing::offline_solution: no plan yet");
  }
  return *offline_;
}

const DeviationPenaltyPlacer& ESharing::placer() const {
  if (!placer_.has_value()) {
    throw std::logic_error("ESharing::placer: start_online first");
  }
  return *placer_;
}

DeviationPenaltyPlacer& ESharing::placer() {
  if (!placer_.has_value()) {
    throw std::logic_error("ESharing::placer: start_online first");
  }
  return *placer_;
}

void ESharing::save_placer(std::ostream& os) const {
  placer().save(os);
}

void ESharing::restore_placer(std::istream& is) {
  if (!offline_.has_value()) {
    throw std::logic_error("ESharing::restore_placer: plan_offline first");
  }
  placer_ = DeviationPenaltyPlacer::restore(is, opening_cost_fn_,
                                            config_.placer);
}

namespace {
namespace wire = data::wire;
// Re-optimization session blob: the post-delta instance + last solution
// (see ReoptimizationSession::from_state). Versioned like the placer blob.
constexpr std::uint64_t kReoptMagic = 0x4552454f50545331ULL;  // "EREOPTS1"
constexpr std::uint64_t kReoptVersion = 1;
constexpr std::uint64_t kReoptSaneMax = 1ULL << 32;
}  // namespace

void ESharing::save_reopt(std::ostream& os) const {
  if (reopt_ == nullptr) {
    throw std::logic_error("ESharing::save_reopt: plan_offline first");
  }
  const solver::FlInstance& instance = reopt_->instance();
  const solver::FlSolution& last = reopt_->solution();
  wire::write_u64(os, kReoptMagic);
  wire::write_u64(os, kReoptVersion);
  wire::write_u64(os, instance.clients.size());
  for (const solver::FlClient& c : instance.clients) {
    wire::write_f64(os, c.location.x);
    wire::write_f64(os, c.location.y);
    wire::write_f64(os, c.weight);
  }
  wire::write_u64(os, instance.facilities.size());
  for (const solver::FlFacility& f : instance.facilities) {
    wire::write_f64(os, f.location.x);
    wire::write_f64(os, f.location.y);
    wire::write_f64(os, f.opening_cost);
  }
  wire::write_u64(os, last.open.size());
  for (std::size_t f : last.open) wire::write_u64(os, f);
  wire::write_u64(os, last.assignment.size());
  for (std::size_t f : last.assignment) wire::write_u64(os, f);
  wire::write_f64(os, last.connection_cost);
  wire::write_f64(os, last.opening_cost);
}

void ESharing::restore_reopt(std::istream& is) {
  if (reopt_ == nullptr) {
    throw std::logic_error("ESharing::restore_reopt: plan_offline first");
  }
  if (wire::read_u64(is) != kReoptMagic) {
    throw std::runtime_error(
        "ESharing::restore_reopt: bad magic — not a reopt session blob");
  }
  const std::uint64_t version = wire::read_u64(is);
  if (version != kReoptVersion) {
    throw std::runtime_error(
        "ESharing::restore_reopt: unsupported blob version " +
        std::to_string(version) + " (this build reads " +
        std::to_string(kReoptVersion) + ")");
  }
  solver::FlInstance instance;
  const std::uint64_t n_clients = wire::read_count(is, kReoptSaneMax);
  instance.clients.reserve(n_clients);
  for (std::uint64_t i = 0; i < n_clients; ++i) {
    solver::FlClient c;
    c.location.x = wire::read_f64(is);
    c.location.y = wire::read_f64(is);
    c.weight = wire::read_f64(is);
    instance.clients.push_back(c);
  }
  const std::uint64_t n_facilities = wire::read_count(is, kReoptSaneMax);
  instance.facilities.reserve(n_facilities);
  for (std::uint64_t i = 0; i < n_facilities; ++i) {
    solver::FlFacility f;
    f.location.x = wire::read_f64(is);
    f.location.y = wire::read_f64(is);
    f.opening_cost = wire::read_f64(is);
    instance.facilities.push_back(f);
  }
  solver::FlSolution last;
  const std::uint64_t n_open = wire::read_count(is, kReoptSaneMax);
  last.open.reserve(n_open);
  for (std::uint64_t i = 0; i < n_open; ++i) {
    last.open.push_back(wire::read_u64(is));
  }
  const std::uint64_t n_assignment = wire::read_count(is, kReoptSaneMax);
  last.assignment.reserve(n_assignment);
  for (std::uint64_t i = 0; i < n_assignment; ++i) {
    last.assignment.push_back(wire::read_u64(is));
  }
  last.connection_cost = wire::read_f64(is);
  last.opening_cost = wire::read_f64(is);
  if (!is) {
    throw std::runtime_error(
        "ESharing::restore_reopt: truncated reopt session blob");
  }
  try {
    reopt_ = solver::ReoptimizationSession::from_state(
        std::move(instance), std::move(last), solver::ReoptOptions{},
        opening_cost_fn_);
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("ESharing::restore_reopt: "
                                         "inconsistent blob: ") +
                             e.what());
  }
  offline_ = reopt_->solution();
  offline_locations_.clear();
  for (std::size_t f : offline_->open) {
    offline_locations_.push_back(reopt_->instance().facilities[f].location);
  }
}

IncentiveMechanism ESharing::make_incentive_session(
    const energy::BikeFleet& fleet,
    const std::vector<std::size_t>& bike_station) const {
  if (bike_station.size() != fleet.size()) {
    throw std::invalid_argument(
        "ESharing::make_incentive_session: bike_station size mismatch");
  }
  const auto locations = parking_locations();
  std::vector<EnergyStation> stations;
  stations.reserve(locations.size());
  for (Point p : locations) stations.push_back({p, {}});
  for (std::size_t b = 0; b < fleet.size(); ++b) {
    if (bike_station[b] >= stations.size()) {
      throw std::invalid_argument(
          "ESharing::make_incentive_session: station index out of range");
    }
    if (fleet.is_low(b)) stations[bike_station[b]].low_bikes.push_back(b);
  }
  return IncentiveMechanism(std::move(stations), config_.incentive);
}

ChargingRoundResult ESharing::charge(const IncentiveMechanism& session) const {
  return run_charging_round(session.stations(), config_.incentive.costs,
                            config_.charging_operator);
}

}  // namespace esharing::core
