#include "core/esharing.h"

#include <stdexcept>

#include "solver/jms_greedy.h"

namespace esharing::core {

using geo::Point;

ESharing::ESharing(ESharingConfig config, std::uint64_t seed)
    : config_(config), seed_(seed) {}

const solver::FlSolution& ESharing::plan_offline(
    const std::vector<data::DemandSite>& sites,
    std::function<double(Point)> opening_cost_fn) {
  if (sites.empty()) {
    throw std::invalid_argument("ESharing::plan_offline: no demand sites");
  }
  if (!opening_cost_fn) {
    throw std::invalid_argument("ESharing::plan_offline: null opening cost fn");
  }
  opening_cost_fn_ = std::move(opening_cost_fn);

  std::vector<solver::FlClient> clients;
  std::vector<double> costs;
  clients.reserve(sites.size());
  costs.reserve(sites.size());
  for (const auto& site : sites) {
    clients.push_back({site.location, site.arrivals});
    costs.push_back(opening_cost_fn_(site.location));
  }
  const auto instance = solver::colocated_instance(std::move(clients),
                                                   std::move(costs));
  offline_ = solver::jms_greedy(instance);
  offline_locations_.clear();
  for (std::size_t f : offline_->open) {
    offline_locations_.push_back(instance.facilities[f].location);
  }
  placer_.reset();  // a new plan invalidates any running online phase
  return *offline_;
}

void ESharing::start_online(std::vector<Point> historical_sample) {
  if (!offline_.has_value()) {
    throw std::logic_error("ESharing::start_online: plan_offline first");
  }
  placer_.emplace(offline_locations_, std::move(historical_sample),
                  opening_cost_fn_, config_.placer, seed_ ^ 0x9e3779b97f4a7c15ULL);
}

solver::OnlineDecision ESharing::handle_request(Point destination,
                                                double weight) {
  if (!placer_.has_value()) {
    throw std::logic_error("ESharing::handle_request: start_online first");
  }
  return placer_->process(destination, weight);
}

std::vector<Point> ESharing::parking_locations() const {
  if (placer_.has_value()) return placer_->active_locations();
  if (offline_.has_value()) return offline_locations_;
  throw std::logic_error("ESharing::parking_locations: no plan yet");
}

const solver::FlSolution& ESharing::offline_solution() const {
  if (!offline_.has_value()) {
    throw std::logic_error("ESharing::offline_solution: no plan yet");
  }
  return *offline_;
}

const DeviationPenaltyPlacer& ESharing::placer() const {
  if (!placer_.has_value()) {
    throw std::logic_error("ESharing::placer: start_online first");
  }
  return *placer_;
}

DeviationPenaltyPlacer& ESharing::placer() {
  if (!placer_.has_value()) {
    throw std::logic_error("ESharing::placer: start_online first");
  }
  return *placer_;
}

IncentiveMechanism ESharing::make_incentive_session(
    const energy::BikeFleet& fleet,
    const std::vector<std::size_t>& bike_station) const {
  if (bike_station.size() != fleet.size()) {
    throw std::invalid_argument(
        "ESharing::make_incentive_session: bike_station size mismatch");
  }
  const auto locations = parking_locations();
  std::vector<EnergyStation> stations;
  stations.reserve(locations.size());
  for (Point p : locations) stations.push_back({p, {}});
  for (std::size_t b = 0; b < fleet.size(); ++b) {
    if (bike_station[b] >= stations.size()) {
      throw std::invalid_argument(
          "ESharing::make_incentive_session: station index out of range");
    }
    if (fleet.is_low(b)) stations[bike_station[b]].low_bikes.push_back(b);
  }
  return IncentiveMechanism(std::move(stations), config_.incentive);
}

ChargingRoundResult ESharing::charge(const IncentiveMechanism& session) const {
  return run_charging_round(session.stations(), config_.incentive.costs,
                            config_.charging_operator);
}

}  // namespace esharing::core
