#pragma once

/// \file daytype_router.h
/// Day-type plan routing. Table IV shows weekday and weekend demand come
/// from different distributions (the paper trains its forecaster per day
/// type for the same reason), so a deployment maintains one offline plan —
/// and one online placer — per day type and routes each live request by
/// its timestamp's calendar. Both placers share the opening-cost field and
/// configuration; their station sets evolve independently.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/deviation_placer.h"
#include "data/trip.h"

namespace esharing::core {

class DayTypeRouter {
 public:
  /// \param weekday_landmarks / weekend_landmarks offline plans per day type
  /// \param weekday_sample / weekend_sample KS reference samples per day type
  /// \throws std::invalid_argument under the same conditions as
  ///         DeviationPenaltyPlacer.
  DayTypeRouter(std::vector<geo::Point> weekday_landmarks,
                std::vector<geo::Point> weekday_sample,
                std::vector<geo::Point> weekend_landmarks,
                std::vector<geo::Point> weekend_sample,
                std::function<double(geo::Point)> opening_cost_fn,
                const DeviationPlacerConfig& config, std::uint64_t seed);

  /// Route one request by its timestamp's day type.
  solver::OnlineDecision process(data::Seconds when, geo::Point destination,
                                 double weight = 1.0);

  /// The placer that served (or would serve) time `when`.
  [[nodiscard]] const DeviationPenaltyPlacer& placer_for(data::Seconds when) const;
  [[nodiscard]] DeviationPenaltyPlacer& weekday() { return weekday_; }
  [[nodiscard]] DeviationPenaltyPlacer& weekend() { return weekend_; }
  [[nodiscard]] const DeviationPenaltyPlacer& weekday() const { return weekday_; }
  [[nodiscard]] const DeviationPenaltyPlacer& weekend() const { return weekend_; }

  /// Union of both day types' active stations (weekday first).
  [[nodiscard]] std::vector<geo::Point> all_active_locations() const;

  [[nodiscard]] double total_connection_cost() const {
    return weekday_.total_connection_cost() + weekend_.total_connection_cost();
  }

 private:
  DeviationPenaltyPlacer weekday_;
  DeviationPenaltyPlacer weekend_;
};

}  // namespace esharing::core
