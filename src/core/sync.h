#pragma once

/// \file sync.h
/// Annotated synchronization primitives: thin std::mutex /
/// std::condition_variable wrappers carrying the Clang Thread Safety
/// Analysis attributes from core/thread_annotations.h. All lock-protected
/// state in this repo uses these instead of the raw std types so the
/// `ESHARING_THREAD_SAFETY` build can prove, at compile time, that every
/// ES_GUARDED_BY member is only touched with its mutex held. The wrappers
/// compile to exactly the std types on every compiler — zero runtime cost.
///
/// Usage is the std idiom, one-for-one:
///
///   mutable es::Mutex mu_;
///   std::vector<int> items_ ES_GUARDED_BY(mu_);
///
///   void push(int v) {
///     const es::LockGuard lock(mu_);
///     items_.push_back(v);                 // provably protected
///   }
///
/// Condition waits pair es::UniqueLock with es::CondVar and an explicit
/// while loop, which keeps the guarded reads in the annotated caller scope
/// where the analysis can see the capability is held:
///
///   es::UniqueLock lock(mu_);
///   while (items_.empty()) not_empty_.wait(lock);

#include <condition_variable>
#include <mutex>

#include "core/thread_annotations.h"

namespace esharing::sync {

/// std::mutex carrying the ES_CAPABILITY attribute so members can be
/// declared ES_GUARDED_BY an instance of it.
class ES_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ES_ACQUIRE() { mu_.lock(); }
  void unlock() ES_RELEASE() { mu_.unlock(); }

  /// The wrapped std::mutex, for interop with std lock machinery
  /// (es::UniqueLock, es::CondVar). Bypasses the analysis — use the
  /// wrappers rather than locking through it directly.
  [[nodiscard]] std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// std::lock_guard over es::Mutex: scope-held exclusive lock.
class ES_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) ES_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() ES_RELEASE() { mu_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock over es::Mutex — the lock type condition waits need.
/// Intentionally minimal: always locked for its full scope (no deferred /
/// early-unlock states, which the static analysis cannot track).
class ES_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) ES_ACQUIRE(mu) : lock_(mu.native()) {}
  ~UniqueLock() ES_RELEASE() {}  // member unique_lock releases
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  /// The wrapped std::unique_lock, for std::condition_variable interop.
  [[nodiscard]] std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable paired with es::UniqueLock. wait() releases and
/// reacquires the lock internally; from the analysis' point of view the
/// capability is held across the call, which is exactly the guarantee the
/// caller's while-loop recheck relies on.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(UniqueLock& lock) { cv_.wait(lock.native()); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace esharing::sync

/// Short alias used at declaration sites: `es::Mutex mu_;`.
namespace es = esharing::sync;
