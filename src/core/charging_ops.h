#pragma once

/// \file charging_ops.h
/// The maintenance operator's charging round (Section V-E). The operator
/// forms a TSP route through all stations that hold low-battery bikes and
/// "conduct[s] charging in a paralleled manner at each location" within a
/// fixed shift; stations beyond the shift stay uncharged, which is how the
/// paper measures the percentage of E-bikes charged (Fig. 12(b)).

#include <cstddef>
#include <vector>

#include "core/incentive.h"
#include "energy/charging_cost.h"
#include "geo/point.h"

namespace esharing::core {

struct OperatorConfig {
  double speed_mps{5.0};          ///< service vehicle speed
  double stop_overhead_s{600.0};  ///< per-stop setup (parking, unloading)
  double charge_time_s{1800.0};   ///< parallel charge/swap duration per stop
  double work_seconds{4.0 * 3600.0};  ///< shift length
  geo::Point depot{0.0, 0.0};
};

struct ChargingRoundResult {
  std::size_t stations_total{0};    ///< stations that needed service
  std::size_t stations_visited{0};  ///< actually served within the shift
  std::size_t bikes_total{0};       ///< low-battery bikes across all stations
  std::size_t bikes_charged{0};
  double service_cost{0.0};   ///< sum of q over visited stations
  double delay_cost{0.0};     ///< sum of t*d over visited positions
  double energy_cost{0.0};    ///< b per bike charged
  double moving_distance_m{0.0};
  std::vector<std::size_t> route;  ///< visited station indices, in order

  [[nodiscard]] double pct_charged() const {
    return bikes_total == 0
               ? 100.0
               : 100.0 * static_cast<double>(bikes_charged) /
                     static_cast<double>(bikes_total);
  }
  /// Total maintenance cost including the incentives already paid.
  [[nodiscard]] double total_cost(double incentives_paid = 0.0) const {
    return service_cost + delay_cost + energy_cost + incentives_paid;
  }
};

/// Run one charging round over the stations (only those with low bikes are
/// routed). Charged bikes are NOT mutated here — callers holding a
/// BikeFleet can recharge the bikes listed at the visited stations.
/// \throws std::invalid_argument for non-positive speed or shift.
[[nodiscard]] ChargingRoundResult run_charging_round(
    const std::vector<EnergyStation>& stations,
    const energy::ChargingCostParams& costs, const OperatorConfig& op);

/// A fleet of operators working in parallel (the paper's remark that the
/// provider can "schedule the operators more frequently during rush hours
/// to the low-energy demand sites"). Demand sites are split into
/// `n_operators` angular sectors around the depot (a classic sweep
/// partition); each operator runs its own shift-limited TSP round, and the
/// per-operator results are merged. Delay positions restart per operator,
/// so the quadratic delay term shrinks roughly by 1/n_operators^2.
/// \throws std::invalid_argument if n_operators == 0 or the operator
///         config is invalid.
[[nodiscard]] ChargingRoundResult run_charging_round_multi(
    const std::vector<EnergyStation>& stations,
    const energy::ChargingCostParams& costs, const OperatorConfig& op,
    std::size_t n_operators);

}  // namespace esharing::core
