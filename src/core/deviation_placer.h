#pragma once

/// \file deviation_placer.h
/// The paper's online Parking Placement Algorithm with Deviation Penalty
/// (Algorithm 2). It guides irrevocable online decisions with two artifacts
/// of the offline (JMS) solution computed on historical/predicted data: the
/// parking count k = |P| and the location set P used as landmarks.
///
/// Per streaming request u with destination point i:
///   * c_ij = weighted walking cost to the closest established parking j
///     (offline landmark or online-opened station);
///   * a new parking opens at i with probability
///     min(g(dev(i)) * c_ij / f, 1), where f is the current (scaled)
///     opening cost and the penalty g is evaluated on dev(i), the distance
///     from i to the nearest OFFLINE landmark — "using their locations as
///     landmarks ensures established parking does not deviate too much
///     from the historical patterns". Keying g to the immutable landmark
///     set (rather than to whatever opened most recently) is what makes the
///     three penalty shapes behave as Fig. 5/Table III describe: Type II
///     confines new parkings to within L of the prediction, Type III
///     tolerates a mid-range band, Type I keeps a long tail. The landmark
///     set only ever changes wholesale, when reanchor() installs a freshly
///     re-optimized plan;
///   * the effective opening cost starts small and doubles every time
///     beta*k parkings have been opened since the last doubling, so late
///     over-building becomes prohibitive. Following the online k-means
///     seeding the algorithm borrows from (f_1 = w*/k), Algorithm 2's
///     "f_i <- f_i * w*/k" is read as: w*/k (with w* = half the minimum
///     pairwise landmark distance) sets the absolute starting scale in
///     meters, and the per-location base cost f_i only modulates it
///     relatively, f_eff(p) = (f(p) / mean landmark f) * scale. A literal
///     meter-times-meter product would make opening probabilities g*c/f
///     vanish for realistic f (~10 km), freezing the online adaptivity the
///     paper demonstrates;
///   * periodically (and at every doubling), a Peacock 2-D KS test compares
///     the current destination window against the historical sample and
///     switches the penalty type (very similar -> Type II, similar ->
///     Type III, less similar -> Type I, Section V-C).
///
/// Footnote 2's dynamics are supported: a station whose bikes are all
/// picked up can be removed and later re-established by demand.

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <vector>

#include "core/penalty.h"
#include "geo/point.h"
#include "geo/spatial_index.h"
#include "solver/meyerson.h"
#include "stats/rng.h"

namespace esharing::core {

struct DeviationPlacerConfig {
  double beta{1.0};          ///< doubling ratio (>= 1); f doubles per beta*k openings
  double tolerance{200.0};   ///< penalty tolerance L in meters (paper: 200 m)
  PenaltyType initial_penalty{PenaltyType::kTypeII};  ///< Algorithm 2 line 4
  std::size_t ks_period{200};     ///< run the KS test every this many requests (0 = only at doublings)
  std::size_t ks_min_samples{30}; ///< skip the test until the window has this many points
  std::size_t window_capacity{500};  ///< size of the sliding current-window G
  bool adaptive_type{true};   ///< switch penalty type from KS similarity
  /// When positive, use this w* instead of computing half the minimum
  /// pairwise landmark distance. Required to run with a single landmark
  /// (e.g. the Table III setup, one offline parking at the origin).
  double w_star_override{0.0};
  /// Multiplier gamma on the initial opening scale, scale_0 = gamma * w*/k.
  /// Controls how eagerly the online phase opens before the doubling
  /// schedule takes over: ~1 reproduces online k-means' aggressive seeding,
  /// larger values keep the station count near the offline k (the paper's
  /// reported behaviour, ~1.5x the offline count).
  double initial_scale_multiplier{20.0};
  /// When positive, start the opening scale at this absolute value (meters
  /// of walking-equivalent) instead of gamma * w*/k. Long request streams
  /// need a scale comparable to the real opening cost f (as Meyerson uses)
  /// or the beta*k doubling schedule cannot keep the station count near
  /// the offline k; see bench/plp_compare.cpp.
  double initial_scale_override{0.0};
  /// Optional regulatory filter: a new parking may only be established at
  /// points this predicate permits ("many municipalities do not allow
  /// E-bikes to park uncoordinately at random locations"). Filtered
  /// requests are always assigned to the nearest existing parking. A
  /// geo::ZoneSet bound via [zones](geo::Point p){ return zones.permits(p); }
  /// is the typical source. Null = everywhere allowed.
  std::function<bool(geo::Point)> placement_filter;
};

/// One established parking location.
struct Station {
  geo::Point location;
  bool online_opened{false};  ///< false for offline landmarks
  bool active{true};          ///< false once removed (footnote 2)
};

class DeviationPenaltyPlacer {
 public:
  /// \param offline_parkings landmark set P from the offline algorithm
  /// \param historical_sample destination sample H(x, y) the offline
  ///        solution was computed from (KS-test reference)
  /// \param opening_cost_fn base space-occupation cost f_i at any location
  /// \throws std::invalid_argument if offline_parkings has < 2 stations,
  ///         beta < 1, or tolerance <= 0.
  DeviationPenaltyPlacer(std::vector<geo::Point> offline_parkings,
                         std::vector<geo::Point> historical_sample,
                         std::function<double(geo::Point)> opening_cost_fn,
                         DeviationPlacerConfig config, std::uint64_t seed);

  /// Process one streaming request with destination `dest` and arrival
  /// weight `weight` (expected arrivals represented by this request).
  solver::OnlineDecision process(geo::Point dest, double weight = 1.0);

  /// Remove a station whose bikes were all picked up (footnote 2). Online
  /// decisions may re-establish a parking there later.
  /// \throws std::out_of_range for invalid indices,
  ///         std::logic_error when removing the last active station.
  void remove_station(std::size_t index);

  /// Replace the offline landmark set P with a re-optimized one (the
  /// hourly re-anchor cadence of the incremental re-optimization engine;
  /// see solver::ReoptimizationSession). Deviation penalties and the KS
  /// regime machinery key to the NEW landmarks from the next request on;
  /// new landmark locations that are not yet active stations are
  /// established (online_opened = false), while existing stations persist
  /// — a physical parking does not vanish because the plan moved. The
  /// adapted opening scale and doubling counter carry over: resetting them
  /// would replay the aggressive early-opening phase after every
  /// re-anchor.
  /// A single landmark is allowed (unlike construction): w* only seeds the
  /// initial scale, which a re-anchor carries over.
  /// \throws std::invalid_argument on an empty landmark set.
  void reanchor(const std::vector<geo::Point>& new_landmarks);

  [[nodiscard]] std::uint64_t reanchors() const { return reanchors_; }

  // --- observers ---------------------------------------------------------
  [[nodiscard]] const std::vector<Station>& stations() const { return stations_; }
  /// Index of the active station nearest to `p` (ties: smallest index), or
  /// stations().size() when none is active. Indexed query, O(1) expected.
  [[nodiscard]] std::size_t nearest_active(geo::Point p) const;
  [[nodiscard]] std::size_t num_active() const;
  [[nodiscard]] std::size_t num_online_opened() const;
  /// Active station locations (order matches stations() filtering).
  [[nodiscard]] std::vector<geo::Point> active_locations() const;

  [[nodiscard]] double total_connection_cost() const { return connection_cost_; }
  /// Space occupation: sum of base opening costs of active stations.
  [[nodiscard]] double total_opening_cost() const;
  [[nodiscard]] double total_cost() const {
    return total_connection_cost() + total_opening_cost();
  }

  // --- checkpointing ------------------------------------------------------
  /// Serialize the full mutable state — stations, sliding window, KS
  /// history, opening scale, penalty regime, counters and the RNG engine —
  /// as versioned little-endian binary (see DESIGN.md, "Stream
  /// checkpoints"). A placer restored from this blob continues the request
  /// stream bit-identically to the original instance.
  void save(std::ostream& os) const;

  /// Rebuild a placer from a save() blob. `opening_cost_fn` and `config`
  /// are not serialized (closures cannot be) and must semantically match
  /// the ones the saved placer ran with; a few serialized config scalars
  /// are cross-checked to catch mismatches early.
  /// \throws std::runtime_error on truncated/corrupt input or a version or
  ///         config mismatch.
  [[nodiscard]] static DeviationPenaltyPlacer restore(
      std::istream& is, std::function<double(geo::Point)> opening_cost_fn,
      DeviationPlacerConfig config);

  [[nodiscard]] PenaltyType penalty_type() const { return penalty_.type(); }
  /// Current opening-cost scale (starts at w*/k, doubles per beta*k opens).
  [[nodiscard]] double cost_scale() const { return scale_; }
  [[nodiscard]] double last_similarity() const { return last_similarity_; }
  [[nodiscard]] std::size_t requests_seen() const { return requests_seen_; }

 private:
  void maybe_run_ks_test();
  /// Deviation of a destination from the offline prediction: distance to
  /// the nearest landmark.
  [[nodiscard]] double deviation(geo::Point p) const;

  DeviationPlacerConfig config_;
  std::function<double(geo::Point)> opening_cost_fn_;
  stats::Rng rng_;
  std::vector<Station> stations_;
  /// Bucketed mirror of stations_ (same ids; deactivated on removal).
  geo::SpatialIndex station_index_;
  std::vector<geo::Point> landmarks_;  ///< offline set P (replaced by reanchor)
  geo::SpatialIndex landmark_index_;   ///< bucketed mirror of landmarks_
  std::size_t k_;              ///< offline parking count |P|
  double reference_f_;         ///< mean base opening cost over landmarks
  double scale_;               ///< current opening scale (starts at w*/k)
  std::size_t opens_since_double_{0};  ///< the algorithm's counter a
  PenaltyFunction penalty_;
  std::vector<geo::Point> history_;    ///< H(x, y)
  std::deque<geo::Point> window_;      ///< current sample G
  double connection_cost_{0.0};
  double last_similarity_{100.0};
  std::size_t requests_seen_{0};
  std::uint64_t reanchors_{0};
};

}  // namespace esharing::core
