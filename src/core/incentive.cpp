#include "core/incentive.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "data/wire.h"
#include "obs/registry.h"
#include "solver/tsp.h"

namespace esharing::core {

using geo::Point;

namespace {

struct IncentiveMetrics {
  obs::Counter& offers_made;
  obs::Counter& offers_accepted;
  obs::Counter& relocations;
  obs::Gauge& incentives_paid;

  static IncentiveMetrics& get() {
    static IncentiveMetrics m{
        obs::Registry::global().counter("core.incentive.offers_made"),
        obs::Registry::global().counter("core.incentive.offers_accepted"),
        obs::Registry::global().counter("core.incentive.relocations"),
        obs::Registry::global().gauge("core.incentive.incentives_paid"),
    };
    return m;
  }
};

}  // namespace

IncentiveMechanism::IncentiveMechanism(std::vector<EnergyStation> stations,
                                       IncentiveConfig config)
    : config_(config), stations_(std::move(stations)) {
  if (stations_.empty()) {
    throw std::invalid_argument("IncentiveMechanism: no stations");
  }
  if (config_.alpha < 0.0 || config_.alpha > 1.0) {
    throw std::invalid_argument("IncentiveMechanism: alpha outside [0, 1]");
  }
  if (config_.mileage_slack_m < 0.0) {
    throw std::invalid_argument("IncentiveMechanism: negative mileage slack");
  }
  positions_.assign(stations_.size(), 0);
  frozen_offer_.assign(stations_.size(), 0.0);
  for (const EnergyStation& s : stations_) location_index_.insert(s.location);
}

namespace {
namespace wire = data::wire;
constexpr std::uint64_t kIncentiveMagic = 0x45494e43454e5431ULL;  // "EINCENT1"
constexpr std::uint64_t kIncentiveVersion = 1;
}  // namespace

void IncentiveMechanism::save(std::ostream& os) const {
  wire::write_u64(os, kIncentiveMagic);
  wire::write_u64(os, kIncentiveVersion);
  wire::write_f64(os, config_.alpha);
  wire::write_u64(os, stations_.size());
  for (const EnergyStation& s : stations_) {
    wire::write_f64(os, s.location.x);
    wire::write_f64(os, s.location.y);
    wire::write_u64(os, s.low_bikes.size());
    for (std::size_t b : s.low_bikes) wire::write_u64(os, b);
  }
  wire::write_u64(os, frozen_offer_.size());
  for (double v : frozen_offer_) wire::write_f64(os, v);
  wire::write_u64(os, relocated_.size());
  for (bool r : relocated_) wire::write_u8(os, r ? 1 : 0);
  wire::write_f64(os, paid_);
  wire::write_u64(os, relocations_);
  wire::write_u64(os, offers_made_);
}

IncentiveMechanism IncentiveMechanism::restore(std::istream& is,
                                               IncentiveConfig config) {
  constexpr std::uint64_t kSaneMax = 1ULL << 32;
  if (wire::read_u64(is) != kIncentiveMagic) {
    throw std::runtime_error(
        "IncentiveMechanism::restore: bad magic — not an incentive "
        "checkpoint blob");
  }
  const std::uint64_t version = wire::read_u64(is);
  if (version != kIncentiveVersion) {
    throw std::runtime_error(
        "IncentiveMechanism::restore: unsupported checkpoint version " +
        std::to_string(version) + " (this build reads " +
        std::to_string(kIncentiveVersion) + ")");
  }
  const double alpha = wire::read_f64(is);
  if (alpha != config.alpha) {
    throw std::runtime_error(
        "IncentiveMechanism::restore: config mismatch — checkpoint was "
        "written with alpha = " +
        std::to_string(alpha) + ", restore config has " +
        std::to_string(config.alpha));
  }
  const std::uint64_t n_stations = wire::read_count(is, kSaneMax);
  std::vector<EnergyStation> stations;
  stations.reserve(n_stations);
  for (std::uint64_t i = 0; i < n_stations; ++i) {
    EnergyStation s;
    s.location.x = wire::read_f64(is);
    s.location.y = wire::read_f64(is);
    const std::uint64_t n_low = wire::read_count(is, kSaneMax);
    s.low_bikes.reserve(n_low);
    for (std::uint64_t b = 0; b < n_low; ++b) {
      s.low_bikes.push_back(wire::read_u64(is));
    }
    stations.push_back(std::move(s));
  }
  IncentiveMechanism session(std::move(stations), config);
  const std::uint64_t n_frozen = wire::read_count(is, kSaneMax);
  if (n_frozen != session.stations_.size()) {
    throw std::runtime_error(
        "IncentiveMechanism::restore: frozen-offer table size " +
        std::to_string(n_frozen) + " does not match " +
        std::to_string(session.stations_.size()) + " stations");
  }
  for (std::uint64_t i = 0; i < n_frozen; ++i) {
    session.frozen_offer_[i] = wire::read_f64(is);
  }
  const std::uint64_t n_relocated = wire::read_count(is, kSaneMax);
  session.relocated_.assign(n_relocated, false);
  for (std::uint64_t i = 0; i < n_relocated; ++i) {
    session.relocated_[i] = wire::read_u8(is) != 0;
  }
  session.paid_ = wire::read_f64(is);
  session.relocations_ = wire::read_u64(is);
  session.offers_made_ = wire::read_u64(is);
  session.sequence_dirty_ = true;  // recomputed lazily from pile state
  return session;
}

void IncentiveMechanism::refresh_sequence() const {
  if (!sequence_dirty_) return;
  positions_.assign(stations_.size(), 0);
  std::vector<std::size_t> needing;
  std::vector<Point> sites;
  for (std::size_t s = 0; s < stations_.size(); ++s) {
    if (!stations_[s].low_bikes.empty()) {
      needing.push_back(s);
      sites.push_back(stations_[s].location);
    }
  }
  if (!needing.empty()) {
    const auto order = solver::solve_tsp(sites);
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
      positions_[needing[order[pos]]] = pos + 1;
    }
  }
  sequence_dirty_ = false;
}

std::vector<std::size_t> IncentiveMechanism::stations_needing_service() const {
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < stations_.size(); ++s) {
    if (!stations_[s].low_bikes.empty()) out.push_back(s);
  }
  return out;
}

std::size_t IncentiveMechanism::service_position(std::size_t station) const {
  if (station >= stations_.size()) {
    throw std::out_of_range("IncentiveMechanism::service_position");
  }
  refresh_sequence();
  return positions_[station];
}

Offer IncentiveMechanism::handle_pickup(std::size_t station_i, Point dest_j,
                                        const UserBehavior& user,
                                        const CanRideFn& can_ride) {
  if (station_i >= stations_.size()) {
    throw std::out_of_range("IncentiveMechanism::handle_pickup");
  }
  Offer offer;
  EnergyStation& from = stations_[station_i];
  if (config_.alpha <= 0.0 || from.low_bikes.empty() || !can_ride) {
    return offer;  // nothing to aggregate or incentives disabled
  }

  const double intended_m = geo::distance(from.location, dest_j);

  // Choose the aggregation target k: a different station whose ride
  // distance from i matches the user's intended mileage within the slack.
  // Only "uphill" moves are offered — the target pile must be at least as
  // large as the source pile — so bikes snowball toward designated
  // aggregation points and can never ping-pong (each accepted move strictly
  // grows the receiving pile above the donor's). Among eligible targets we
  // prefer the largest pile, tie-broken by the smallest extra walk.
  // Candidate prefilter: eligible targets lie in the ring of radius
  // intended_m +/- slack around station i. The index query uses a slightly
  // inflated outer radius (hypot and squared-distance comparisons can
  // disagree by an ulp at the boundary) and the exact mileage test is
  // re-applied below, so the offered target is identical to the full scan's
  // (within_radius returns ascending indices — the scan order the
  // tie-breaking depends on).
  const double outer_m =
      (intended_m + config_.mileage_slack_m) * (1.0 + 1e-9) + 1e-9;
  std::size_t best_k = stations_.size();
  double best_walk = 0.0;
  for (std::size_t k : location_index_.within_radius(from.location, outer_m)) {
    if (k == station_i) continue;
    if (stations_[k].low_bikes.size() < from.low_bikes.size()) continue;
    const double ride = geo::distance(from.location, stations_[k].location);
    if (std::abs(ride - intended_m) > config_.mileage_slack_m) continue;
    const double walk = geo::distance(stations_[k].location, dest_j);
    if (best_k == stations_.size() ||
        stations_[k].low_bikes.size() > stations_[best_k].low_bikes.size() ||
        (stations_[k].low_bikes.size() == stations_[best_k].low_bikes.size() &&
         walk < best_walk)) {
      best_k = k;
      best_walk = walk;
    }
  }
  if (best_k == stations_.size()) return offer;

  // Pick a low bike that survives the ride ("the system should ensure the
  // mileage between i and k does not deplete the residual battery") and
  // has not been relocated before — aggregation points are terminal.
  const double ride_m = geo::distance(from.location, stations_[best_k].location);
  std::size_t bike_slot = from.low_bikes.size();
  for (std::size_t s = 0; s < from.low_bikes.size(); ++s) {
    const std::size_t bike = from.low_bikes[s];
    if (bike < relocated_.size() && relocated_[bike]) continue;
    if (can_ride(bike, ride_m)) {
      bike_slot = s;
      break;
    }
  }
  if (bike_slot == from.low_bikes.size()) return offer;

  // The offer level is frozen at the first offer for this station: each of
  // the initial |L_i| bikes earns alpha*(q+td)/|L_i|, keeping total
  // payments within the Eq. 12 saving even as the pile shrinks.
  if (frozen_offer_[station_i] <= 0.0) {
    refresh_sequence();
    const std::size_t t =
        std::min(std::max<std::size_t>(positions_[station_i], 1),
                 std::max<std::size_t>(config_.max_sequence_position, 1));
    frozen_offer_[station_i] = energy::uniform_offer(
        config_.alpha, t, from.low_bikes.size(), config_.costs);
  }
  const double v = frozen_offer_[station_i];

  offer.made = true;
  ++offers_made_;
  if (obs::enabled()) IncentiveMetrics::get().offers_made.add();
  offer.incentive = v;
  offer.from_station = station_i;
  offer.to_station = best_k;
  offer.bike = from.low_bikes[bike_slot];
  offer.ride_m = ride_m;
  offer.extra_walk_m = best_walk;

  // Eq. 13: accept iff extra walk under c_u and reward clears v_u*.
  if (best_walk < user.max_walk_m && v >= user.min_reward) {
    offer.accepted = true;
    paid_ += v;
    ++relocations_;
    if (obs::enabled()) {
      IncentiveMetrics::get().offers_accepted.add();
      IncentiveMetrics::get().relocations.add();
      IncentiveMetrics::get().incentives_paid.set(paid_);
    }
    from.low_bikes.erase(from.low_bikes.begin() +
                         static_cast<std::ptrdiff_t>(bike_slot));
    stations_[best_k].low_bikes.push_back(offer.bike);
    if (offer.bike >= relocated_.size()) relocated_.resize(offer.bike + 1, false);
    relocated_[offer.bike] = true;
    if (from.low_bikes.empty()) frozen_offer_[station_i] = 0.0;
    sequence_dirty_ = true;  // service set / pile sizes changed
  }
  return offer;
}

}  // namespace esharing::core
