#include "core/incentive.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/registry.h"
#include "solver/tsp.h"

namespace esharing::core {

using geo::Point;

namespace {

struct IncentiveMetrics {
  obs::Counter& offers_made;
  obs::Counter& offers_accepted;
  obs::Counter& relocations;
  obs::Gauge& incentives_paid;

  static IncentiveMetrics& get() {
    static IncentiveMetrics m{
        obs::Registry::global().counter("core.incentive.offers_made"),
        obs::Registry::global().counter("core.incentive.offers_accepted"),
        obs::Registry::global().counter("core.incentive.relocations"),
        obs::Registry::global().gauge("core.incentive.incentives_paid"),
    };
    return m;
  }
};

}  // namespace

IncentiveMechanism::IncentiveMechanism(std::vector<EnergyStation> stations,
                                       IncentiveConfig config)
    : config_(config), stations_(std::move(stations)) {
  if (stations_.empty()) {
    throw std::invalid_argument("IncentiveMechanism: no stations");
  }
  if (config_.alpha < 0.0 || config_.alpha > 1.0) {
    throw std::invalid_argument("IncentiveMechanism: alpha outside [0, 1]");
  }
  if (config_.mileage_slack_m < 0.0) {
    throw std::invalid_argument("IncentiveMechanism: negative mileage slack");
  }
  positions_.assign(stations_.size(), 0);
  frozen_offer_.assign(stations_.size(), 0.0);
  for (const EnergyStation& s : stations_) location_index_.insert(s.location);
}

void IncentiveMechanism::refresh_sequence() const {
  if (!sequence_dirty_) return;
  positions_.assign(stations_.size(), 0);
  std::vector<std::size_t> needing;
  std::vector<Point> sites;
  for (std::size_t s = 0; s < stations_.size(); ++s) {
    if (!stations_[s].low_bikes.empty()) {
      needing.push_back(s);
      sites.push_back(stations_[s].location);
    }
  }
  if (!needing.empty()) {
    const auto order = solver::solve_tsp(sites);
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
      positions_[needing[order[pos]]] = pos + 1;
    }
  }
  sequence_dirty_ = false;
}

std::vector<std::size_t> IncentiveMechanism::stations_needing_service() const {
  std::vector<std::size_t> out;
  for (std::size_t s = 0; s < stations_.size(); ++s) {
    if (!stations_[s].low_bikes.empty()) out.push_back(s);
  }
  return out;
}

std::size_t IncentiveMechanism::service_position(std::size_t station) const {
  if (station >= stations_.size()) {
    throw std::out_of_range("IncentiveMechanism::service_position");
  }
  refresh_sequence();
  return positions_[station];
}

Offer IncentiveMechanism::handle_pickup(std::size_t station_i, Point dest_j,
                                        const UserBehavior& user,
                                        const CanRideFn& can_ride) {
  if (station_i >= stations_.size()) {
    throw std::out_of_range("IncentiveMechanism::handle_pickup");
  }
  Offer offer;
  EnergyStation& from = stations_[station_i];
  if (config_.alpha <= 0.0 || from.low_bikes.empty() || !can_ride) {
    return offer;  // nothing to aggregate or incentives disabled
  }

  const double intended_m = geo::distance(from.location, dest_j);

  // Choose the aggregation target k: a different station whose ride
  // distance from i matches the user's intended mileage within the slack.
  // Only "uphill" moves are offered — the target pile must be at least as
  // large as the source pile — so bikes snowball toward designated
  // aggregation points and can never ping-pong (each accepted move strictly
  // grows the receiving pile above the donor's). Among eligible targets we
  // prefer the largest pile, tie-broken by the smallest extra walk.
  // Candidate prefilter: eligible targets lie in the ring of radius
  // intended_m +/- slack around station i. The index query uses a slightly
  // inflated outer radius (hypot and squared-distance comparisons can
  // disagree by an ulp at the boundary) and the exact mileage test is
  // re-applied below, so the offered target is identical to the full scan's
  // (within_radius returns ascending indices — the scan order the
  // tie-breaking depends on).
  const double outer_m =
      (intended_m + config_.mileage_slack_m) * (1.0 + 1e-9) + 1e-9;
  std::size_t best_k = stations_.size();
  double best_walk = 0.0;
  for (std::size_t k : location_index_.within_radius(from.location, outer_m)) {
    if (k == station_i) continue;
    if (stations_[k].low_bikes.size() < from.low_bikes.size()) continue;
    const double ride = geo::distance(from.location, stations_[k].location);
    if (std::abs(ride - intended_m) > config_.mileage_slack_m) continue;
    const double walk = geo::distance(stations_[k].location, dest_j);
    if (best_k == stations_.size() ||
        stations_[k].low_bikes.size() > stations_[best_k].low_bikes.size() ||
        (stations_[k].low_bikes.size() == stations_[best_k].low_bikes.size() &&
         walk < best_walk)) {
      best_k = k;
      best_walk = walk;
    }
  }
  if (best_k == stations_.size()) return offer;

  // Pick a low bike that survives the ride ("the system should ensure the
  // mileage between i and k does not deplete the residual battery") and
  // has not been relocated before — aggregation points are terminal.
  const double ride_m = geo::distance(from.location, stations_[best_k].location);
  std::size_t bike_slot = from.low_bikes.size();
  for (std::size_t s = 0; s < from.low_bikes.size(); ++s) {
    const std::size_t bike = from.low_bikes[s];
    if (bike < relocated_.size() && relocated_[bike]) continue;
    if (can_ride(bike, ride_m)) {
      bike_slot = s;
      break;
    }
  }
  if (bike_slot == from.low_bikes.size()) return offer;

  // The offer level is frozen at the first offer for this station: each of
  // the initial |L_i| bikes earns alpha*(q+td)/|L_i|, keeping total
  // payments within the Eq. 12 saving even as the pile shrinks.
  if (frozen_offer_[station_i] <= 0.0) {
    refresh_sequence();
    const std::size_t t =
        std::min(std::max<std::size_t>(positions_[station_i], 1),
                 std::max<std::size_t>(config_.max_sequence_position, 1));
    frozen_offer_[station_i] = energy::uniform_offer(
        config_.alpha, t, from.low_bikes.size(), config_.costs);
  }
  const double v = frozen_offer_[station_i];

  offer.made = true;
  ++offers_made_;
  if (obs::enabled()) IncentiveMetrics::get().offers_made.add();
  offer.incentive = v;
  offer.from_station = station_i;
  offer.to_station = best_k;
  offer.bike = from.low_bikes[bike_slot];
  offer.ride_m = ride_m;
  offer.extra_walk_m = best_walk;

  // Eq. 13: accept iff extra walk under c_u and reward clears v_u*.
  if (best_walk < user.max_walk_m && v >= user.min_reward) {
    offer.accepted = true;
    paid_ += v;
    ++relocations_;
    if (obs::enabled()) {
      IncentiveMetrics::get().offers_accepted.add();
      IncentiveMetrics::get().relocations.add();
      IncentiveMetrics::get().incentives_paid.set(paid_);
    }
    from.low_bikes.erase(from.low_bikes.begin() +
                         static_cast<std::ptrdiff_t>(bike_slot));
    stations_[best_k].low_bikes.push_back(offer.bike);
    if (offer.bike >= relocated_.size()) relocated_.resize(offer.bike + 1, false);
    relocated_[offer.bike] = true;
    if (from.low_bikes.empty()) frozen_offer_[station_i] = 0.0;
    sequence_dirty_ = true;  // service set / pile sizes changed
  }
  return offer;
}

}  // namespace esharing::core
