#pragma once

/// \file incentive.h
/// Tier two: the online incentive mechanism (Section IV-C, Algorithm 3).
/// Stations accumulate low-battery bikes L_i; when a user picks up at
/// station i heading to destination parking j, the system offers a uniform
/// reward v = alpha * (q + t*d) / |L_i| (t = station i's position in the
/// planned charging sequence) for riding one low-energy bike to a
/// neighbouring aggregation station k instead. The target k is chosen so
/// the ride mileage stays (approximately) the user's intended mileage — no
/// extra metered charge — and the bike's residual battery must survive the
/// ride. The user accepts iff the extra walk from k to the destination is
/// below her threshold c_u and the reward clears her reservation value v_u*
/// (Eq. 13). Once L_i empties the operator can skip station i entirely,
/// saving Delta_i <= q + t*d (Eq. 12); alpha < 1 guarantees the payments
/// stay within the saving.

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <limits>
#include <vector>

#include "energy/charging_cost.h"
#include "geo/point.h"
#include "geo/spatial_index.h"

namespace esharing::core {

/// A parking location with its set of low-battery bikes.
struct EnergyStation {
  geo::Point location;
  std::vector<std::size_t> low_bikes;  ///< bike indices below the threshold
};

/// Per-user private thresholds of the acceptance model (Eq. 13).
struct UserBehavior {
  double max_walk_m{300.0};  ///< c_u: accepted maximum extra walking distance
  double min_reward{0.5};    ///< v_u*: accepted minimum reward ($)
};

struct IncentiveConfig {
  double alpha{0.4};  ///< incentive level in [0, 1]; 0 disables offers
  energy::ChargingCostParams costs;
  double mileage_slack_m{150.0};  ///< |d(i,k) - d(i,j)| tolerance
  /// Cap on the sequence position t used in the offer value
  /// v = alpha*(q + (t-1)d)/|L_i|. Operators serve stations in short
  /// shift-limited rounds, so the delay a skip actually saves is bounded by
  /// the round length, not by the full TSP sequence over every site.
  /// Keeping t small keeps payments well inside the realized saving.
  std::size_t max_sequence_position{std::numeric_limits<std::size_t>::max()};
};

/// Outcome of one pickup interaction.
struct Offer {
  bool made{false};      ///< an eligible (station, target) pair existed
  bool accepted{false};
  double incentive{0.0};       ///< v offered (and paid when accepted)
  std::size_t from_station{0};
  std::size_t to_station{0};
  std::size_t bike{0};         ///< the low-energy bike relocated
  double ride_m{0.0};          ///< relocation ride distance
  double extra_walk_m{0.0};    ///< c_{kj*}, walk from k to the destination
};

class IncentiveMechanism {
 public:
  /// Predicate: can `bike` ride `distance_m` without depleting its battery.
  using CanRideFn = std::function<bool(std::size_t bike, double distance_m)>;

  /// \throws std::invalid_argument if stations empty, alpha outside [0,1]
  ///         or slack negative.
  IncentiveMechanism(std::vector<EnergyStation> stations, IncentiveConfig config);

  /// Handle a pickup at station `station_i` by a user whose assigned
  /// destination parking is at `dest_j`. May move one low bike between
  /// stations (the caller is responsible for draining its battery by
  /// Offer::ride_m).
  /// \throws std::out_of_range for bad station indices.
  Offer handle_pickup(std::size_t station_i, geo::Point dest_j,
                      const UserBehavior& user, const CanRideFn& can_ride);

  // --- checkpointing ------------------------------------------------------
  /// Serialize the session state (stations with their low-bike piles,
  /// frozen offers, relocation set, payment counters) as versioned binary.
  /// A session restored from the blob answers subsequent handle_pickup
  /// calls identically to the original (the TSP sequence is recomputed
  /// lazily and is a pure function of the pile state).
  void save(std::ostream& os) const;
  /// Rebuild a session from a save() blob; `config` must match the one the
  /// saved session ran with (alpha is cross-checked).
  /// \throws std::runtime_error on truncated/corrupt input or mismatch.
  [[nodiscard]] static IncentiveMechanism restore(std::istream& is,
                                                  IncentiveConfig config);

  // --- observers ---------------------------------------------------------
  [[nodiscard]] const std::vector<EnergyStation>& stations() const {
    return stations_;
  }
  /// Stations that still hold low-battery bikes, i.e. must be serviced.
  [[nodiscard]] std::vector<std::size_t> stations_needing_service() const;
  /// 1-based position t of a station in the current TSP charging sequence;
  /// 0 if the station needs no service.
  [[nodiscard]] std::size_t service_position(std::size_t station) const;
  [[nodiscard]] double total_incentives_paid() const { return paid_; }
  [[nodiscard]] std::size_t relocations() const { return relocations_; }
  [[nodiscard]] std::size_t offers_made() const { return offers_made_; }
  [[nodiscard]] const IncentiveConfig& config() const { return config_; }

 private:
  void refresh_sequence() const;

  IncentiveConfig config_;
  std::vector<EnergyStation> stations_;
  /// Bucketed index over station locations (immutable within a session):
  /// prunes the aggregation-target ring search to candidates near the
  /// intended ride mileage instead of scanning every station.
  geo::SpatialIndex location_index_;
  /// Offer value per station, frozen at the first offer so that emptying a
  /// pile of initial size l pays at most l * alpha*(q+td)/l = alpha*Delta_i
  /// (the Eq. 12 budget). 0 means not yet set; reset when a station
  /// empties.
  std::vector<double> frozen_offer_;
  /// Bikes already relocated this session. Aggregation points are terminal:
  /// paying a bike to hop again would compound payments past the Eq. 12
  /// budget without emptying any additional station.
  std::vector<bool> relocated_;
  double paid_{0.0};
  std::size_t relocations_{0};
  std::size_t offers_made_{0};
  // Lazily recomputed TSP positions (1-based; 0 = not in sequence).
  mutable std::vector<std::size_t> positions_;
  mutable bool sequence_dirty_{true};
};

}  // namespace esharing::core
