#pragma once

/// \file stations_io.h
/// CSV serialization of a parking-station network — the hand-off artifact
/// between the planning pipeline (offline plan + online placer state) and
/// the operations side (maintenance routing, the mobile app's station
/// list). Columns: id,x,y,online_opened,active.

#include <iosfwd>
#include <string>
#include <vector>

#include "core/deviation_placer.h"

namespace esharing::core {

[[nodiscard]] std::string station_csv_header();

void write_stations_csv(std::ostream& os,
                        const std::vector<Station>& stations);

/// \throws std::invalid_argument on malformed input.
[[nodiscard]] std::vector<Station> read_stations_csv(std::istream& is);

/// \throws std::runtime_error if the file cannot be opened.
void save_stations_csv(const std::string& path,
                       const std::vector<Station>& stations);
[[nodiscard]] std::vector<Station> load_stations_csv(
    const std::string& path);

}  // namespace esharing::core
