#include "core/stations_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace esharing::core {

std::string station_csv_header() { return "id,x,y,online_opened,active"; }

void write_stations_csv(std::ostream& os,
                        const std::vector<Station>& stations) {
  os << station_csv_header() << '\n';
  os << std::setprecision(17);
  for (std::size_t i = 0; i < stations.size(); ++i) {
    const auto& s = stations[i];
    os << i << ',' << s.location.x << ',' << s.location.y << ','
       << (s.online_opened ? 1 : 0) << ',' << (s.active ? 1 : 0) << '\n';
  }
}

std::vector<Station> read_stations_csv(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != station_csv_header()) {
    throw std::invalid_argument("station csv: missing or wrong header");
  }
  std::vector<Station> out;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string field;
    std::vector<std::string> fields;
    while (std::getline(row, field, ',')) fields.push_back(field);
    if (fields.size() != 5) {
      throw std::invalid_argument("station csv: expected 5 columns");
    }
    try {
      Station s;
      s.location = {std::stod(fields[1]), std::stod(fields[2])};
      s.online_opened = std::stoi(fields[3]) != 0;
      s.active = std::stoi(fields[4]) != 0;
      out.push_back(s);
    } catch (const std::exception&) {
      throw std::invalid_argument("station csv: malformed row '" + line + "'");
    }
  }
  return out;
}

void save_stations_csv(const std::string& path,
                       const std::vector<Station>& stations) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_stations_csv: cannot open " + path);
  write_stations_csv(os, stations);
}

std::vector<Station> load_stations_csv(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_stations_csv: cannot open " + path);
  return read_stations_csv(is);
}

}  // namespace esharing::core
