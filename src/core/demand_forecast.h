#pragma once

/// \file demand_forecast.h
/// Per-grid demand forecasting: the bridge between the prediction engine
/// (Table II's models) and the offline PLP input. The paper forecasts "for
/// each grid ... the future k steps" and feeds the predictions into the
/// placement algorithm; this module fits a forecaster per busy cell (the
/// candidate space is "reduced to filter out those less popular
/// locations"), predicts the next horizon of hourly arrivals, and emits
/// the predicted DemandSite set plan_offline() consumes. Quiet cells fall
/// back to their historical mean scaled by the busy cells' predicted
/// volume trend.

#include <cstddef>
#include <vector>

#include "data/binning.h"
#include "geo/grid.h"
#include "ml/forecaster.h"

namespace esharing::core {

enum class ForecastEngine { kSeasonalNaive, kMovingAverage, kArima, kLstm, kGru };

[[nodiscard]] const char* forecast_engine_name(ForecastEngine e);

struct GridForecastConfig {
  ForecastEngine engine{ForecastEngine::kSeasonalNaive};
  std::size_t top_cells{50};   ///< fit a model only for the busiest cells
  std::size_t horizon_hours{24};
  /// LSTM/GRU training budget when those engines are selected (kept small:
  /// one model per cell).
  int rnn_hidden{12};
  int rnn_epochs{8};
  /// Route the kLstm/kGru top cells through the batched shared-weight
  /// runtime (ml/batch.h): one fit over the pooled cells, one fused
  /// forward per horizon step across all of them, per-cell scalers kept.
  /// Off = the original one-model-per-cell path (fits fan out over the
  /// exec pool either way).
  bool rnn_batch{true};
  /// Full-batch Adam budget for the batched runtime; full-batch steps are
  /// not comparable 1:1 with the per-window SGD `rnn_epochs` above.
  int rnn_batch_epochs{40};
  /// Serve batched forecasts from int8-quantized weights (accuracy A/B'd
  /// against fp32 in EXPERIMENTS.md).
  bool rnn_int8{false};
  std::uint64_t seed{1};

  /// \throws std::invalid_argument on the first violated constraint
  ///         (forecast_grid_demand calls this first).
  void validate() const;
};

struct GridForecast {
  /// Predicted arrivals per grid cell summed over the horizon.
  std::vector<double> predicted_arrivals;
  std::size_t modeled_cells{0};  ///< cells that got their own forecaster

  /// Demand sites (cells with positive predicted arrivals) for
  /// ESharing::plan_offline().
  [[nodiscard]] std::vector<data::DemandSite> sites(const geo::Grid& grid) const;
};

/// Forecast the next `config.horizon_hours` of arrivals per cell from the
/// historical (cells x hours) matrix.
/// \throws std::invalid_argument if the matrix is too short for the chosen
///         engine or grid/matrix sizes mismatch.
[[nodiscard]] GridForecast forecast_grid_demand(const data::DemandMatrix& history,
                                                const geo::Grid& grid,
                                                const GridForecastConfig& config);

}  // namespace esharing::core
