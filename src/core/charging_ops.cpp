#include "core/charging_ops.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "obs/registry.h"
#include "solver/tsp.h"

namespace esharing::core {

namespace {

struct ChargingMetrics {
  obs::Counter& rounds;
  obs::Counter& stations_visited;
  obs::Counter& bikes_charged;

  static ChargingMetrics& get() {
    static ChargingMetrics m{
        obs::Registry::global().counter("core.charging_ops.rounds"),
        obs::Registry::global().counter("core.charging_ops.stations_visited"),
        obs::Registry::global().counter("core.charging_ops.bikes_charged"),
    };
    return m;
  }
};

}  // namespace

ChargingRoundResult run_charging_round(
    const std::vector<EnergyStation>& stations,
    const energy::ChargingCostParams& costs, const OperatorConfig& op) {
  if (!(op.speed_mps > 0.0)) {
    throw std::invalid_argument("run_charging_round: speed must be positive");
  }
  if (!(op.work_seconds > 0.0)) {
    throw std::invalid_argument("run_charging_round: shift must be positive");
  }

  ChargingRoundResult result;
  std::vector<std::size_t> needing;
  std::vector<geo::Point> sites;
  sites.push_back(op.depot);  // route starts at the depot (site 0)
  for (std::size_t s = 0; s < stations.size(); ++s) {
    result.bikes_total += stations[s].low_bikes.size();
    if (!stations[s].low_bikes.empty()) {
      needing.push_back(s);
      sites.push_back(stations[s].location);
    }
  }
  result.stations_total = needing.size();
  if (needing.empty()) return result;

  // Shortest route from the depot through all demand sites. solve_tsp
  // returns a cycle; rotate it to start at the depot and walk it open-ended
  // in whichever direction gives the shorter path (the operator does not
  // return to the depot within the shift).
  const auto order = solver::solve_tsp(sites);
  std::vector<std::size_t> tour;
  const auto depot_it = std::find(order.begin(), order.end(), std::size_t{0});
  tour.insert(tour.end(), depot_it, order.end());
  tour.insert(tour.end(), order.begin(), depot_it);
  std::vector<std::size_t> reversed{0};
  reversed.insert(reversed.end(), tour.rbegin(),
                  tour.rbegin() + static_cast<std::ptrdiff_t>(tour.size() - 1));
  if (solver::tour_length(sites, reversed, /*round_trip=*/false) <
      solver::tour_length(sites, tour, /*round_trip=*/false)) {
    tour = std::move(reversed);
  }

  double elapsed = 0.0;
  geo::Point at = op.depot;
  std::size_t position = 0;  // 1-based t in the served sequence
  for (std::size_t step = 1; step < tour.size(); ++step) {
    const std::size_t site = tour[step];
    const geo::Point next = sites[site];
    const double leg = geo::distance(at, next);
    const double stop_time = leg / op.speed_mps + op.stop_overhead_s +
                             op.charge_time_s;
    if (elapsed + stop_time > op.work_seconds) break;
    elapsed += stop_time;
    result.moving_distance_m += leg;
    at = next;
    ++position;

    const std::size_t station = needing[site - 1];
    result.route.push_back(station);
    ++result.stations_visited;
    result.service_cost += costs.service_cost_q;
    result.delay_cost +=
        static_cast<double>(position - 1) * costs.delay_cost_d;
    result.energy_cost +=
        costs.energy_cost_b * static_cast<double>(stations[station].low_bikes.size());
    result.bikes_charged += stations[station].low_bikes.size();
  }
  if (obs::enabled()) {
    ChargingMetrics::get().rounds.add();
    ChargingMetrics::get().stations_visited.add(result.stations_visited);
    ChargingMetrics::get().bikes_charged.add(result.bikes_charged);
  }
  return result;
}

ChargingRoundResult run_charging_round_multi(
    const std::vector<EnergyStation>& stations,
    const energy::ChargingCostParams& costs, const OperatorConfig& op,
    std::size_t n_operators) {
  if (n_operators == 0) {
    throw std::invalid_argument("run_charging_round_multi: no operators");
  }
  if (n_operators == 1) return run_charging_round(stations, costs, op);

  // Sweep partition: demand sites sorted by angle around the depot, cut
  // into n_operators contiguous sectors with balanced site counts.
  std::vector<std::size_t> needing;
  for (std::size_t s = 0; s < stations.size(); ++s) {
    if (!stations[s].low_bikes.empty()) needing.push_back(s);
  }
  std::sort(needing.begin(), needing.end(), [&](std::size_t a, std::size_t b) {
    const geo::Point pa = stations[a].location - op.depot;
    const geo::Point pb = stations[b].location - op.depot;
    return std::atan2(pa.y, pa.x) < std::atan2(pb.y, pb.x);
  });

  ChargingRoundResult merged;
  merged.bikes_total = 0;
  for (const auto& s : stations) merged.bikes_total += s.low_bikes.size();
  merged.stations_total = needing.size();

  const std::size_t per = (needing.size() + n_operators - 1) / n_operators;
  for (std::size_t o = 0; o < n_operators && o * per < needing.size(); ++o) {
    // Build a sub-problem holding only this sector's piles.
    std::vector<EnergyStation> sector(stations.size());
    for (std::size_t s = 0; s < stations.size(); ++s) {
      sector[s].location = stations[s].location;
    }
    const std::size_t lo = o * per;
    const std::size_t hi = std::min(needing.size(), lo + per);
    for (std::size_t k = lo; k < hi; ++k) {
      sector[needing[k]].low_bikes = stations[needing[k]].low_bikes;
    }
    const auto part = run_charging_round(sector, costs, op);
    merged.stations_visited += part.stations_visited;
    merged.bikes_charged += part.bikes_charged;
    merged.service_cost += part.service_cost;
    merged.delay_cost += part.delay_cost;
    merged.energy_cost += part.energy_cost;
    merged.moving_distance_m += part.moving_distance_m;
    merged.route.insert(merged.route.end(), part.route.begin(),
                        part.route.end());
  }
  return merged;
}

}  // namespace esharing::core
