#pragma once

/// \file penalty.h
/// Deviation penalty functions g(i,j) of the online placement algorithm
/// (Section III-D, Eq. 6-8). The penalty multiplies the opening probability
/// min(g * c_ij / f_i, 1): the further a requested destination deviates
/// from the closest (offline-guided) parking, the less likely a new parking
/// opens there. L is the tolerance level in meters.
///
///   Type I   g(c) = 1 / (c/L + 1)            — long tail, mild decline
///   Type II  g(c) = max(0, 1 - c/L)          — hard cutoff at L
///   Type III g(c) = exp(-c^2 / L^2)          — Gaussian, in between
///
/// Section V-C pairs them with the measured KS similarity: very similar
/// (>= 95%) -> Type II, similar (80-95%) -> Type III, less similar (< 80%)
/// -> Type I. The polynomial form is the paper's proposed future extension
/// ("design the penalty function as high-order polynomials").

#include <string>
#include <vector>

namespace esharing::core {

enum class PenaltyType { kNone, kTypeI, kTypeII, kTypeIII, kPolynomial };

[[nodiscard]] const char* penalty_type_name(PenaltyType t);

/// A penalty function g(c) over non-negative walking cost c, with values in
/// [0, 1] and g(0) = 1 ("no penalty is imposed because the destination is
/// very close to the offline solutions").
class PenaltyFunction {
 public:
  /// Always 1 — the plain Meyerson behaviour.
  [[nodiscard]] static PenaltyFunction none();
  /// \throws std::invalid_argument if tolerance <= 0.
  [[nodiscard]] static PenaltyFunction type1(double tolerance);
  [[nodiscard]] static PenaltyFunction type2(double tolerance);
  [[nodiscard]] static PenaltyFunction type3(double tolerance);
  /// Future-work extension: g(c) = clamp(sum_k coeffs[k] * (c/L)^k, 0, 1).
  /// \throws std::invalid_argument if tolerance <= 0 or coeffs empty.
  [[nodiscard]] static PenaltyFunction polynomial(double tolerance,
                                                  std::vector<double> coeffs);
  /// Factory by type with a shared tolerance (polynomial not supported here).
  [[nodiscard]] static PenaltyFunction of(PenaltyType type, double tolerance);

  /// g(c); clamped to [0, 1]. \throws std::invalid_argument if c < 0.
  [[nodiscard]] double operator()(double c) const;

  /// First derivative dg/dc (Fig. 5(b)); for the polynomial the analytic
  /// derivative of the unclamped form is returned.
  [[nodiscard]] double derivative(double c) const;

  [[nodiscard]] PenaltyType type() const { return type_; }
  [[nodiscard]] double tolerance() const { return tolerance_; }
  [[nodiscard]] std::string name() const;

 private:
  PenaltyFunction(PenaltyType type, double tolerance,
                  std::vector<double> coeffs);

  PenaltyType type_;
  double tolerance_;
  std::vector<double> coeffs_;
};

/// Section V-C's similarity -> penalty-type policy.
[[nodiscard]] PenaltyType penalty_type_for_similarity(double similarity_percent);

}  // namespace esharing::core
