#include "stats/ks2d.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <stdexcept>

#include "exec/thread_pool.h"
#include "stats/summary.h"

namespace esharing::stats {

namespace {

using geo::Point;

void require_samples(const std::vector<Point>& a, const std::vector<Point>& b,
                     const char* who) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument(std::string(who) + ": empty sample");
  }
}

/// Fenwick (binary indexed) tree over ranks, for prefix counts.
class Fenwick {
 public:
  explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}

  void add(std::size_t rank) {  // 0-based rank
    for (std::size_t i = rank + 1; i < tree_.size(); i += i & (~i + 1)) {
      ++tree_[i];
    }
  }

  /// Number of inserted ranks <= rank (0-based, inclusive).
  [[nodiscard]] std::size_t prefix(std::size_t rank) const {
    std::size_t sum = 0;
    for (std::size_t i = rank + 1; i > 0; i -= i & (~i + 1)) sum += tree_[i];
    return sum;
  }

 private:
  std::vector<std::size_t> tree_;
};

/// Max quadrant-fraction difference at origin (X, Y). Quadrants follow the
/// Numerical-Recipes convention (<= vs >), which partitions the plane.
double origin_diff(std::size_t a_ll, std::size_t a_l, std::size_t a_b,
                   std::size_t na, std::size_t b_ll, std::size_t b_l,
                   std::size_t b_b, std::size_t nb) {
  const auto frac = [](std::size_t c, std::size_t n) {
    return static_cast<double>(c) / static_cast<double>(n);
  };
  const double d_ll = std::abs(frac(a_ll, na) - frac(b_ll, nb));
  const double d_lg = std::abs(frac(a_l - a_ll, na) - frac(b_l - b_ll, nb));
  const double d_gl = std::abs(frac(a_b - a_ll, na) - frac(b_b - b_ll, nb));
  const double d_gg = std::abs(frac(na - a_l - a_b + a_ll, na) -
                               frac(nb - b_l - b_b + b_ll, nb));
  return std::max({d_ll, d_lg, d_gl, d_gg});
}

/// Quadrant counts of `pts` around origin `o` by direct scan.
struct QuadCounts {
  std::size_t ll{0};  // x<=X, y<=Y
  std::size_t l{0};   // x<=X
  std::size_t b{0};   // y<=Y
};

QuadCounts quad_counts(const std::vector<Point>& pts, Point o) {
  QuadCounts q;
  for (Point p : pts) {
    const bool left = p.x <= o.x;
    const bool below = p.y <= o.y;
    q.l += left ? 1 : 0;
    q.b += below ? 1 : 0;
    q.ll += (left && below) ? 1 : 0;
  }
  return q;
}

std::size_t rank_of(const std::vector<double>& sorted_unique, double v) {
  // number of elements <= v, as a 0-based "inclusive rank + 1" count
  return static_cast<std::size_t>(
      std::upper_bound(sorted_unique.begin(), sorted_unique.end(), v) -
      sorted_unique.begin());
}

}  // namespace

double peacock_statistic(const std::vector<Point>& a,
                         const std::vector<Point>& b) {
  require_samples(a, b, "peacock_statistic");

  // Candidate origins: all pairings (x_i, y_j) of combined coordinates.
  std::vector<double> xs, ys;
  xs.reserve(a.size() + b.size());
  ys.reserve(a.size() + b.size());
  for (Point p : a) { xs.push_back(p.x); ys.push_back(p.y); }
  for (Point p : b) { xs.push_back(p.x); ys.push_back(p.y); }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  // Sort each sample by x so points can be swept into a Fenwick tree over
  // y-rank as the origin's X advances.
  auto by_x = [](Point p, Point q) { return p.x < q.x; };
  std::vector<Point> sa = a, sb = b;
  std::sort(sa.begin(), sa.end(), by_x);
  std::sort(sb.begin(), sb.end(), by_x);

  // Per-sample sorted y arrays for the marginal counts #(y <= Y).
  std::vector<double> ay, by;
  ay.reserve(a.size());
  by.reserve(b.size());
  for (Point p : a) ay.push_back(p.y);
  for (Point p : b) by.push_back(p.y);
  std::sort(ay.begin(), ay.end());
  std::sort(by.begin(), by.end());

  Fenwick fa(ys.size()), fb(ys.size());
  std::size_t ia = 0, ib = 0;
  double best = 0.0;
  for (double X : xs) {
    while (ia < sa.size() && sa[ia].x <= X) {
      fa.add(rank_of(ys, sa[ia].y) - 1);
      ++ia;
    }
    while (ib < sb.size() && sb[ib].x <= X) {
      fb.add(rank_of(ys, sb[ib].y) - 1);
      ++ib;
    }
    for (double Y : ys) {
      const std::size_t yr = rank_of(ys, Y);
      const std::size_t a_ll = fa.prefix(yr - 1);
      const std::size_t b_ll = fb.prefix(yr - 1);
      const std::size_t a_b = rank_of(ay, Y);
      const std::size_t b_b = rank_of(by, Y);
      best = std::max(best, origin_diff(a_ll, ia, a_b, a.size(), b_ll, ib,
                                        b_b, b.size()));
    }
  }
  return best;
}

double fasano_franceschini_statistic(const std::vector<Point>& a,
                                     const std::vector<Point>& b) {
  require_samples(a, b, "fasano_franceschini_statistic");
  // Origins are independent and the reduction is an exact max (the same
  // double wins under any partition), so the per-origin scans fan out on
  // the exec pool — this is the quadratic path the stream drivers hit on
  // every per-shard regime check. Each origin costs O(|a|+|b|), so a small
  // fixed grain load-balances without claim overhead.
  const auto max_over = [&](const std::vector<Point>& origins) {
    return exec::parallel_reduce<double>(
        origins.size(), /*grain=*/16, 0.0,
        [&](std::size_t begin, std::size_t end) {
          double best = 0.0;
          for (std::size_t k = begin; k < end; ++k) {
            const Point o = origins[k];
            const QuadCounts qa = quad_counts(a, o);
            const QuadCounts qb = quad_counts(b, o);
            best = std::max(best, origin_diff(qa.ll, qa.l, qa.b, a.size(),
                                              qb.ll, qb.l, qb.b, b.size()));
          }
          return best;
        },
        [](double acc, double v) { return std::max(acc, v); });
  };
  return (max_over(a) + max_over(b)) / 2.0;
}

double ks_tail_probability(double lambda) {
  if (lambda <= 0.0) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * j * j * lambda * lambda);
    sum += sign * term;
    if (term < 1e-12) break;
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

Ks2dResult ks2d_test(const std::vector<Point>& a, const std::vector<Point>& b,
                     std::size_t peacock_limit) {
  require_samples(a, b, "ks2d_test");
  const double d = (a.size() + b.size() <= peacock_limit)
                       ? peacock_statistic(a, b)
                       : fasano_franceschini_statistic(a, b);

  // Significance approximation following Press et al. (ks2d2s): effective
  // sample size with a coordinate-correlation correction.
  const auto split = [](const std::vector<Point>& pts) {
    std::vector<double> x, y;
    x.reserve(pts.size());
    y.reserve(pts.size());
    for (Point p : pts) { x.push_back(p.x); y.push_back(p.y); }
    return std::pair{std::move(x), std::move(y)};
  };
  double r1 = 0.0, r2 = 0.0;
  if (a.size() >= 2) {
    auto [x, y] = split(a);
    r1 = pearson(x, y);
  }
  if (b.size() >= 2) {
    auto [x, y] = split(b);
    r2 = pearson(x, y);
  }
  const double n_eff = static_cast<double>(a.size()) *
                       static_cast<double>(b.size()) /
                       static_cast<double>(a.size() + b.size());
  const double sqn = std::sqrt(n_eff);
  const double rr = std::sqrt(std::max(0.0, 1.0 - 0.5 * (r1 * r1 + r2 * r2)));
  const double lambda = sqn * d / (1.0 + rr * (0.25 - 0.75 / sqn));
  return {d, ks_tail_probability(lambda), ks_similarity_percent(d)};
}

}  // namespace esharing::stats
