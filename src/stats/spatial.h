#pragma once

/// \file spatial.h
/// Synthetic spatial request distributions. Section V-B evaluates the
/// penalty functions on three shapes of arrivals around the offline parking
/// (placed at the origin): uniform over the field, "poisson" (requests
/// concentrated at mid-range distances from the origin) and normal
/// (requests aggregated around the origin). These generators reproduce
/// those workloads and also serve the Fig. 4 / Fig. 6 examples.

#include <vector>

#include "geo/point.h"
#include "stats/rng.h"

namespace esharing::stats {

/// `n` points uniform over `box`.
[[nodiscard]] std::vector<geo::Point> uniform_points(Rng& rng,
                                                     const geo::BoundingBox& box,
                                                     std::size_t n);

/// `n` points from an isotropic Gaussian around `center`.
[[nodiscard]] std::vector<geo::Point> normal_points(Rng& rng, geo::Point center,
                                                    double sigma, std::size_t n);

/// `n` points whose distance from `center` is Poisson-distributed:
/// radius = Poisson(lambda) * scale (+ uniform jitter within one scale
/// step), direction uniform. With lambda > 1 the mass concentrates in a
/// mid-range ring around the center, matching the paper's description of
/// the "poisson" workload ("requests concentrate in the mid-range from the
/// origin").
[[nodiscard]] std::vector<geo::Point> radial_poisson_points(Rng& rng,
                                                            geo::Point center,
                                                            double lambda,
                                                            double scale,
                                                            std::size_t n);

/// `n` points from a mixture of isotropic Gaussians with the given weights.
/// Used by the synthetic city generator to anchor demand at POIs.
struct GaussianCluster {
  geo::Point center;
  double sigma{1.0};
  double weight{1.0};
};

[[nodiscard]] std::vector<geo::Point> mixture_points(
    Rng& rng, const std::vector<GaussianCluster>& clusters, std::size_t n);

/// Deterministic spatial hash noise in [0, 1): the same (cell, seed) always
/// yields the same value. Used to build reproducible random cost fields —
/// e.g. the paper's "cost of space occupation is uniformly randomly
/// distributed with mean of 10 km" becomes
///   f(p) = mean * (0.5 + hash_noise(p, cell, seed)).
/// \throws std::invalid_argument if cell_size <= 0.
[[nodiscard]] double hash_noise(geo::Point p, double cell_size,
                                std::uint64_t seed);

}  // namespace esharing::stats
