#pragma once

/// \file ks1d.h
/// One-dimensional two-sample Kolmogorov–Smirnov test. The paper uses it
/// to validate that "the data distribution of weekends is different from
/// the weekdays (validated by ks-test)" before splitting the forecaster's
/// training data by day type; it also serves as a reference for the 2-D
/// variant's edge cases.

#include <vector>

namespace esharing::stats {

struct Ks1dResult {
  double d{0.0};        ///< sup_x |F_a(x) - F_b(x)|
  double p_value{1.0};  ///< asymptotic two-sample significance
};

/// Exact two-sample KS statistic via the merged-sort sweep, O((n+m) log).
/// \throws std::invalid_argument if either sample is empty.
[[nodiscard]] double ks1d_statistic(const std::vector<double>& a,
                                    const std::vector<double>& b);

/// Statistic plus the standard asymptotic p-value
/// Q_KS((sqrt(ne) + 0.12 + 0.11/sqrt(ne)) * D), ne = n*m/(n+m).
[[nodiscard]] Ks1dResult ks1d_test(const std::vector<double>& a,
                                   const std::vector<double>& b);

}  // namespace esharing::stats
