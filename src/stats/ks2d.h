#pragma once

/// \file ks2d.h
/// Two-dimensional two-sample Kolmogorov–Smirnov testing.
///
/// E-Sharing periodically compares the current stream of trip destinations
/// against the historical distribution the offline solution was computed
/// from (Algorithm 2, step 9). The paper adopts Peacock's 2-D KS test
/// [Peacock 1983]: the statistic is
///
///     D = sup_{x,y} |H(x,y) - G(x,y)|
///
/// where the supremum ranges over all four quadrant orientations
/// (x<X, y<Y), (x<X, y>Y), (x>X, y<Y), (x>X, y>Y) at every candidate origin.
/// Peacock's exact formulation evaluates origins at all pairings of sample
/// x- and y-coordinates (O(n^2) origins, O(n^3) total — the complexity the
/// paper quotes); the Fasano–Franceschini variant restricts origins to the
/// sample points themselves (O(n^2) total) and is the standard practical
/// approximation.

#include <vector>

#include "geo/point.h"

namespace esharing::stats {

/// Result of a two-sample 2-D KS comparison.
struct Ks2dResult {
  double d{0.0};            ///< the KS statistic in [0, 1]
  double p_value{1.0};      ///< approximate significance (Numerical-Recipes style)
  double similarity{100.0}; ///< the paper's similarity measure 100*(1-D) %
};

/// Peacock's exact statistic: origins at all (x_i, y_j) pairings of the
/// combined sample. O((n+m)^3). Prefer for n+m up to a few thousand.
/// \throws std::invalid_argument if either sample is empty.
[[nodiscard]] double peacock_statistic(const std::vector<geo::Point>& a,
                                       const std::vector<geo::Point>& b);

/// Fasano–Franceschini statistic: origins at the data points only, averaged
/// over the two samples. O(n*m + n^2 + m^2). Close to Peacock's D in
/// practice (tested against it in tests/stats_test.cpp).
/// \throws std::invalid_argument if either sample is empty.
[[nodiscard]] double fasano_franceschini_statistic(
    const std::vector<geo::Point>& a, const std::vector<geo::Point>& b);

/// Full test: statistic (Peacock when n+m <= peacock_limit, otherwise
/// Fasano–Franceschini), the paper's similarity percentage, and an
/// approximate p-value following Press et al. (correlation-corrected 1-D
/// KS tail with effective sample size n*m/(n+m)).
/// \throws std::invalid_argument if either sample is empty.
[[nodiscard]] Ks2dResult ks2d_test(const std::vector<geo::Point>& a,
                                   const std::vector<geo::Point>& b,
                                   std::size_t peacock_limit = 400);

/// The paper's similarity measure for Table IV: 100*(1 - D) percent.
[[nodiscard]] constexpr double ks_similarity_percent(double d) {
  return 100.0 * (1.0 - d);
}

/// Tail probability Q_KS(lambda) of the KS distribution,
/// Q = 2 * sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2).
[[nodiscard]] double ks_tail_probability(double lambda);

}  // namespace esharing::stats
