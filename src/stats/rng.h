#pragma once

/// \file rng.h
/// Deterministic random number generation. Every stochastic component of
/// E-Sharing (the online placement algorithm opens parkings with probability
/// min(g*c/f, 1), the user acceptance model, the synthetic workloads) draws
/// from an explicitly seeded Rng so that every experiment in EXPERIMENTS.md
/// is reproducible bit-for-bit from its seed.

#include <algorithm>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

namespace esharing::stats {

/// A seeded pseudo-random source wrapping std::mt19937_64.
///
/// Rng is cheap to pass by reference and intentionally not copyable by
/// accident (copies would silently replay the same stream); use fork() to
/// derive an independent child stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  Rng(const Rng&) = delete;
  Rng& operator=(const Rng&) = delete;
  Rng(Rng&&) = default;
  Rng& operator=(Rng&&) = default;

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Uniform index in [0, n).
  [[nodiscard]] std::size_t index(std::size_t n) {
    if (n == 0) throw std::invalid_argument("Rng::index: empty range");
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  [[nodiscard]] double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  [[nodiscard]] std::int64_t poisson(double lambda) {
    if (!(lambda >= 0.0)) throw std::invalid_argument("Rng::poisson: lambda < 0");
    if (lambda == 0.0) return 0;
    return std::poisson_distribution<std::int64_t>(lambda)(engine_);
  }

  [[nodiscard]] double exponential(double rate) {
    if (!(rate > 0.0)) throw std::invalid_argument("Rng::exponential: rate <= 0");
    return std::exponential_distribution<double>(rate)(engine_);
  }

  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution(std::clamp(p, 0.0, 1.0))(engine_);
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  /// Sample an index proportionally to non-negative weights.
  /// \throws std::invalid_argument if weights are empty or all zero.
  [[nodiscard]] std::size_t weighted_index(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) {
      if (w < 0.0) throw std::invalid_argument("Rng::weighted_index: negative weight");
      total += w;
    }
    if (weights.empty() || total <= 0.0) {
      throw std::invalid_argument("Rng::weighted_index: no positive weight");
    }
    double r = uniform(0.0, total);
    for (std::size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0.0) return i;
    }
    return weights.size() - 1;  // numeric slack: fall through to last
  }

  /// Derive an independent child stream (splitmix-style remix of the next
  /// draw), useful for parallel or per-component determinism.
  [[nodiscard]] Rng fork() {
    std::uint64_t s = engine_();
    s ^= s >> 30;
    s *= 0xbf58476d1ce4e5b9ULL;
    s ^= s >> 27;
    s *= 0x94d049bb133111ebULL;
    s ^= s >> 31;
    return Rng(s);
  }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }
  /// Const view of the engine — lets checkpointing code serialize the
  /// generator state (operator<< on mt19937_64 does not disturb it).
  [[nodiscard]] const std::mt19937_64& engine() const { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace esharing::stats
