#include "stats/spatial.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace esharing::stats {

using geo::Point;

std::vector<Point> uniform_points(Rng& rng, const geo::BoundingBox& box,
                                  std::size_t n) {
  std::vector<Point> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({rng.uniform(box.min.x, box.max.x),
                   rng.uniform(box.min.y, box.max.y)});
  }
  return out;
}

std::vector<Point> normal_points(Rng& rng, Point center, double sigma,
                                 std::size_t n) {
  if (!(sigma >= 0.0)) throw std::invalid_argument("normal_points: sigma < 0");
  std::vector<Point> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({rng.normal(center.x, sigma), rng.normal(center.y, sigma)});
  }
  return out;
}

std::vector<Point> radial_poisson_points(Rng& rng, Point center, double lambda,
                                         double scale, std::size_t n) {
  if (!(scale > 0.0)) {
    throw std::invalid_argument("radial_poisson_points: scale <= 0");
  }
  std::vector<Point> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double steps = static_cast<double>(rng.poisson(lambda));
    const double r = (steps + rng.uniform()) * scale;
    const double theta = rng.uniform(0.0, 2.0 * std::numbers::pi);
    out.push_back({center.x + r * std::cos(theta),
                   center.y + r * std::sin(theta)});
  }
  return out;
}

std::vector<Point> mixture_points(Rng& rng,
                                  const std::vector<GaussianCluster>& clusters,
                                  std::size_t n) {
  if (clusters.empty()) {
    throw std::invalid_argument("mixture_points: no clusters");
  }
  std::vector<double> weights;
  weights.reserve(clusters.size());
  for (const auto& c : clusters) weights.push_back(c.weight);
  std::vector<Point> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& c = clusters[rng.weighted_index(weights)];
    out.push_back({rng.normal(c.center.x, c.sigma),
                   rng.normal(c.center.y, c.sigma)});
  }
  return out;
}

double hash_noise(geo::Point p, double cell_size, std::uint64_t seed) {
  if (!(cell_size > 0.0)) {
    throw std::invalid_argument("hash_noise: cell_size must be positive");
  }
  const auto cx = static_cast<std::int64_t>(std::floor(p.x / cell_size));
  const auto cy = static_cast<std::int64_t>(std::floor(p.y / cell_size));
  std::uint64_t h = seed;
  h ^= static_cast<std::uint64_t>(cx) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= static_cast<std::uint64_t>(cy) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  // splitmix64 finalizer
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace esharing::stats
