#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace esharing::stats {

namespace {
void require_nonempty(const std::vector<double>& v, const char* who) {
  if (v.empty()) throw std::invalid_argument(std::string(who) + ": empty input");
}
void require_same_size(const std::vector<double>& a,
                       const std::vector<double>& b, const char* who) {
  if (a.size() != b.size()) {
    throw std::invalid_argument(std::string(who) + ": size mismatch");
  }
}
}  // namespace

double mean(const std::vector<double>& v) {
  require_nonempty(v, "mean");
  double sum = 0.0;
  for (double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  require_nonempty(v, "variance");
  if (v.size() == 1) return 0.0;
  const double m = mean(v);
  double sq = 0.0;
  for (double x : v) sq += (x - m) * (x - m);
  return sq / static_cast<double>(v.size() - 1);
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double rmse(const std::vector<double>& predicted,
            const std::vector<double>& actual) {
  require_same_size(predicted, actual, "rmse");
  require_nonempty(actual, "rmse");
  double sq = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double e = predicted[i] - actual[i];
    sq += e * e;
  }
  return std::sqrt(sq / static_cast<double>(actual.size()));
}

double mae(const std::vector<double>& predicted,
           const std::vector<double>& actual) {
  require_same_size(predicted, actual, "mae");
  require_nonempty(actual, "mae");
  double sum = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    sum += std::abs(predicted[i] - actual[i]);
  }
  return sum / static_cast<double>(actual.size());
}

double quantile(std::vector<double> v, double q) {
  require_nonempty(v, "quantile");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0, 1]");
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  require_same_size(x, y, "pearson");
  if (x.size() < 2) throw std::invalid_argument("pearson: need at least 2 samples");
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::mean() const {
  if (n_ == 0) throw std::logic_error("Accumulator::mean: no samples");
  return mean_;
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const {
  if (n_ == 0) throw std::logic_error("Accumulator::min: no samples");
  return min_;
}

double Accumulator::max() const {
  if (n_ == 0) throw std::logic_error("Accumulator::max: no samples");
  return max_;
}

}  // namespace esharing::stats
