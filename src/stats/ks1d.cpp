#include "stats/ks1d.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/ks2d.h"

namespace esharing::stats {

double ks1d_statistic(const std::vector<double>& a,
                      const std::vector<double>& b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("ks1d_statistic: empty sample");
  }
  std::vector<double> sa = a, sb = b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  const double na = static_cast<double>(sa.size());
  const double nb = static_cast<double>(sb.size());
  std::size_t ia = 0, ib = 0;
  double d = 0.0;
  while (ia < sa.size() && ib < sb.size()) {
    const double x = std::min(sa[ia], sb[ib]);
    while (ia < sa.size() && sa[ia] <= x) ++ia;
    while (ib < sb.size() && sb[ib] <= x) ++ib;
    d = std::max(d, std::abs(static_cast<double>(ia) / na -
                             static_cast<double>(ib) / nb));
  }
  return d;
}

Ks1dResult ks1d_test(const std::vector<double>& a,
                     const std::vector<double>& b) {
  const double d = ks1d_statistic(a, b);
  const double ne = static_cast<double>(a.size()) *
                    static_cast<double>(b.size()) /
                    static_cast<double>(a.size() + b.size());
  const double sq = std::sqrt(ne);
  return {d, ks_tail_probability((sq + 0.12 + 0.11 / sq) * d)};
}

}  // namespace esharing::stats
