#pragma once

/// \file summary.h
/// Scalar summary statistics used by the evaluation harness: mean, variance,
/// RMSE (the paper's forecasting metric, Eq. 14), quantiles and a streaming
/// accumulator.

#include <cstddef>
#include <vector>

namespace esharing::stats {

/// \throws std::invalid_argument if `v` is empty.
[[nodiscard]] double mean(const std::vector<double>& v);

/// Unbiased sample variance; 0 for a single element.
/// \throws std::invalid_argument if `v` is empty.
[[nodiscard]] double variance(const std::vector<double>& v);

/// Square root of variance().
[[nodiscard]] double stddev(const std::vector<double>& v);

/// Root mean square error between prediction and truth (paper Eq. 14).
/// \throws std::invalid_argument if sizes differ or inputs are empty.
[[nodiscard]] double rmse(const std::vector<double>& predicted,
                          const std::vector<double>& actual);

/// Mean absolute error.
/// \throws std::invalid_argument if sizes differ or inputs are empty.
[[nodiscard]] double mae(const std::vector<double>& predicted,
                         const std::vector<double>& actual);

/// Linear-interpolation quantile, q in [0, 1].
/// \throws std::invalid_argument if `v` is empty or q outside [0, 1].
[[nodiscard]] double quantile(std::vector<double> v, double q);

/// Pearson correlation coefficient of two equal-length samples.
/// Returns 0 when either sample is constant.
/// \throws std::invalid_argument if sizes differ or n < 2.
[[nodiscard]] double pearson(const std::vector<double>& x,
                             const std::vector<double>& y);

/// Streaming accumulator (Welford) for mean/variance without storing samples.
class Accumulator {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  /// \throws std::logic_error if no samples were added.
  [[nodiscard]] double mean() const;
  /// Unbiased variance; 0 with fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

}  // namespace esharing::stats
