#include "privacy/privacy.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numbers>
#include <stdexcept>

#include "geo/geohash.h"

namespace esharing::privacy {

using geo::Point;

std::uint64_t pseudonymize(std::uint64_t id, std::uint64_t salt) {
  // Two rounds of splitmix64 keyed by the salt; bijective per salt, so
  // pseudonyms never collide.
  std::uint64_t h = id + 0x9e3779b97f4a7c15ULL * (salt | 1ULL);
  for (int round = 0; round < 2; ++round) {
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebULL;
    h ^= h >> 31;
    h += salt;
  }
  return h;
}

double lambert_w_minus1(double x) {
  constexpr double kMinusOneOverE = -0.36787944117144233;
  if (x < kMinusOneOverE - 1e-15 || x >= 0.0) {
    throw std::invalid_argument("lambert_w_minus1: x outside [-1/e, 0)");
  }
  if (x <= kMinusOneOverE) return -1.0;

  // Initial guess (Chapeau-Blondeau & Monir): series near -1/e, log-based
  // guess near 0.
  double w;
  if (x < -0.25) {
    const double p = -std::sqrt(2.0 * (1.0 + std::numbers::e * x));
    w = -1.0 + p - p * p / 3.0 + 11.0 * p * p * p / 72.0;
  } else {
    const double l1 = std::log(-x);
    const double l2 = std::log(-l1);
    w = l1 - l2 + l2 / l1;
  }
  // Halley iterations.
  for (int iter = 0; iter < 60; ++iter) {
    const double ew = std::exp(w);
    const double f = w * ew - x;
    const double denom = ew * (w + 1.0) - (w + 2.0) * f / (2.0 * w + 2.0);
    const double step = f / denom;
    w -= step;
    if (std::abs(step) < 1e-14 * (1.0 + std::abs(w))) break;
  }
  return w;
}

PlanarLaplace::PlanarLaplace(double epsilon) : epsilon_(epsilon) {
  if (!(epsilon > 0.0)) {
    throw std::invalid_argument("PlanarLaplace: epsilon must be positive");
  }
}

Point PlanarLaplace::obfuscate(Point p, stats::Rng& rng) const {
  const double theta = rng.uniform(0.0, 2.0 * std::numbers::pi);
  // Radius ~ Gamma(2, 1/eps): inverse CDF via W_{-1} (Andres et al. 2013).
  const double u = rng.uniform(0.0, 1.0);
  const double arg = (u - 1.0) / std::numbers::e;
  const double r = -(lambert_w_minus1(arg) + 1.0) / epsilon_;
  return {p.x + r * std::cos(theta), p.y + r * std::sin(theta)};
}

std::size_t min_od_group_size(const geo::Grid& grid,
                              const geo::LocalProjection& proj,
                              const std::vector<data::TripRecord>& trips) {
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> groups;
  for (const auto& t : trips) {
    const Point s = proj.to_local(geo::geohash_decode(t.start_geohash).center);
    const Point e = proj.to_local(geo::geohash_decode(t.end_geohash).center);
    const auto key = std::pair{grid.index_of(grid.clamped_cell_of(s)),
                               grid.index_of(grid.clamped_cell_of(e))};
    ++groups[key];
  }
  std::size_t k = 0;
  for (const auto& [key, n] : groups) {
    if (k == 0 || n < k) k = n;
  }
  return k;
}

std::vector<data::TripRecord> anonymize_trips(
    const std::vector<data::TripRecord>& trips,
    const geo::LocalProjection& proj, const AnonymizeConfig& config,
    stats::Rng& rng) {
  const bool obfuscate = config.epsilon > 0.0;
  const PlanarLaplace mechanism(obfuscate ? config.epsilon : 1.0);

  auto rehash = [&](const std::string& hash) {
    Point p = proj.to_local(geo::geohash_decode(hash).center);
    if (obfuscate) p = mechanism.obfuscate(p, rng);
    geo::LatLon c = proj.to_geo(p);
    c.lat = std::clamp(c.lat, -90.0, 90.0);
    c.lon = std::clamp(c.lon, -180.0, 180.0);
    return geo::geohash_encode(c, config.geohash_precision);
  };

  std::vector<data::TripRecord> out;
  out.reserve(trips.size());
  for (const auto& t : trips) {
    data::TripRecord a = t;
    a.user_id = static_cast<std::int64_t>(
        pseudonymize(static_cast<std::uint64_t>(t.user_id), config.salt) >> 1);
    a.bike_id = static_cast<std::int64_t>(
        pseudonymize(static_cast<std::uint64_t>(t.bike_id), config.salt ^ 0xb1ce5ULL) >> 1);
    a.start_geohash = rehash(t.start_geohash);
    a.end_geohash = rehash(t.end_geohash);
    out.push_back(std::move(a));
  }
  return out;
}

}  // namespace esharing::privacy
