#pragma once

/// \file privacy.h
/// Privacy features the paper's system model calls for: "additional
/// security features can be introduced such as hashing/anonymizing the
/// user information or obfuscation with location-wise differential
/// privacy [20]". This module provides
///
///  * keyed pseudonymization of user/bike identifiers (stable within a
///    salt, unlinkable across salts);
///  * geo-indistinguishability via the planar Laplace mechanism
///    (Andres et al.): a location is perturbed by a radius drawn from
///    Gamma(2, 1/epsilon) — sampled exactly through the Lambert W_{-1}
///    branch — in a uniformly random direction, giving epsilon
///    differential privacy per meter of distinguishability;
///  * a k-anonymity audit over origin/destination cell pairs;
///  * trip-stream anonymization combining all of the above.

#include <cstdint>
#include <vector>

#include "data/trip.h"
#include "geo/grid.h"
#include "geo/latlon.h"
#include "geo/point.h"
#include "stats/rng.h"

namespace esharing::privacy {

/// Stable keyed pseudonym of an identifier: the same (id, salt) always
/// yields the same pseudonym; different salts are unlinkable.
[[nodiscard]] std::uint64_t pseudonymize(std::uint64_t id, std::uint64_t salt);

/// Lambert W function, branch -1, for x in [-1/e, 0).
/// \throws std::invalid_argument outside the domain.
[[nodiscard]] double lambert_w_minus1(double x);

/// Planar Laplace (geo-indistinguishability) mechanism.
class PlanarLaplace {
 public:
  /// \param epsilon privacy parameter per meter (> 0); typical values for
  ///        city-scale data are 0.005-0.05 (i.e. strong protection within
  ///        tens to hundreds of meters).
  /// \throws std::invalid_argument if epsilon <= 0.
  explicit PlanarLaplace(double epsilon);

  /// Perturb a planar location.
  [[nodiscard]] geo::Point obfuscate(geo::Point p, stats::Rng& rng) const;

  /// Expected displacement 2/epsilon (mean of Gamma(2, 1/epsilon)).
  [[nodiscard]] double expected_displacement() const { return 2.0 / epsilon_; }
  [[nodiscard]] double epsilon() const { return epsilon_; }

 private:
  double epsilon_;
};

/// Smallest group size when trips are grouped by (start cell, end cell) on
/// `grid` — the k of k-anonymity for the published stream. Returns 0 for
/// an empty stream.
[[nodiscard]] std::size_t min_od_group_size(
    const geo::Grid& grid, const geo::LocalProjection& proj,
    const std::vector<data::TripRecord>& trips);

struct AnonymizeConfig {
  std::uint64_t salt{0x5eed5a17ULL};
  double epsilon{0.01};  ///< planar-Laplace parameter; <= 0 disables
  int geohash_precision{7};
};

/// Anonymize a trip stream: user and bike ids are pseudonymized, start/end
/// locations pass through the planar Laplace mechanism (clamped to valid
/// coordinates) and are re-geohashed. Order ids and timestamps are kept —
/// the downstream demand pipeline needs them.
[[nodiscard]] std::vector<data::TripRecord> anonymize_trips(
    const std::vector<data::TripRecord>& trips,
    const geo::LocalProjection& proj, const AnonymizeConfig& config,
    stats::Rng& rng);

}  // namespace esharing::privacy
