#pragma once

/// \file export.h
/// Snapshot serialization: the machine-readable metrics artifact. JSON is
/// the primary shape (benches drop `<bench>.metrics.json` next to their
/// stdout tables; CI uploads it), CSV is the spreadsheet-friendly twin.
/// Both orders entries by metric name and use stable key layouts, so
/// snapshots diff cleanly across runs — the golden-snapshot test freezes
/// the shape.

#include <string>

#include "obs/registry.h"

namespace esharing::obs {

/// {"counters":{name:value,...},"gauges":{...},
///  "histograms":{name:{"upper_bounds":[...],"buckets":[...],
///                      "count":N,"sum":S},...}}
[[nodiscard]] std::string to_json(const Snapshot& snapshot);

/// One row per scalar: `kind,name,value`; histograms flatten to
/// `histogram,name.count`, `histogram,name.sum` and per-bucket
/// `histogram,name.le_<bound>` rows.
[[nodiscard]] std::string to_csv(const Snapshot& snapshot);

/// Serialize `registry.snapshot()` as JSON into `path`.
/// \returns false when the file cannot be written.
bool write_snapshot_json(const Registry& registry, const std::string& path);

/// Resolve where a named metrics snapshot belongs: `<dir>/<name>.metrics.json`
/// with `<dir>` taken from ESHARING_METRICS_DIR (default `./metrics/`,
/// created on demand). This is the single metrics-dir convention shared by
/// bench::MetricsSession, the examples and the serving daemon, so snapshots
/// never land in the working directory by accident.
[[nodiscard]] std::string metrics_snapshot_path(const std::string& name);

}  // namespace esharing::obs
