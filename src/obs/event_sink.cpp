#include "obs/event_sink.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace esharing::obs {

void StreamEventSink::write(const std::string& line) {
  const es::LockGuard lock(mu_);
  // analyze-ok: blocking-under-lock mu_ keeps event lines whole on the shared stream; the write IS the critical section
  *out_ << line << '\n';
}

struct FileEventSink::Impl {
  es::Mutex mu;
  std::ofstream out ES_GUARDED_BY(mu);
};

FileEventSink::FileEventSink(const std::string& path)
    : impl_(std::make_unique<Impl>()) {
  const es::LockGuard lock(impl_->mu);
  // analyze-ok: blocking-under-lock constructor-time open; nothing else can hold the brand-new mutex yet
  impl_->out.open(path, std::ios::trunc);
  if (!impl_->out) {
    throw std::runtime_error("FileEventSink: cannot open " + path);
  }
}

FileEventSink::~FileEventSink() = default;

void FileEventSink::write(const std::string& line) {
  const es::LockGuard lock(impl_->mu);
  // analyze-ok: blocking-under-lock mu keeps event lines whole in the file; the write IS the critical section
  impl_->out << line << '\n';
}

void MemoryEventSink::write(const std::string& line) {
  const es::LockGuard lock(mu_);
  lines_.push_back(line);
}

std::vector<std::string> MemoryEventSink::lines() const {
  const es::LockGuard lock(mu_);
  return lines_;
}

void MemoryEventSink::clear() {
  const es::LockGuard lock(mu_);
  lines_.clear();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 9.007e15) {
    return std::to_string(static_cast<std::int64_t>(v));
  }
  if (!std::isfinite(v)) return "null";  // JSON has no inf/nan
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace esharing::obs
