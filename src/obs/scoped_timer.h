#pragma once

/// \file scoped_timer.h
/// RAII wall-clock timer feeding a Histogram in seconds. When metrics are
/// disabled the constructor stores a null handle and the destructor is a
/// no-op — no clock read, no atomic.
///
/// Timings only ever feed histograms; no code path reads them back, so the
/// non-deterministic clock cannot leak into solver/placer/sim results.

#include <chrono>

#include "obs/metrics.h"

namespace esharing::obs {

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist)
      : hist_(enabled() ? &hist : nullptr),
        start_(hist_ ? std::chrono::steady_clock::now()
                     : std::chrono::steady_clock::time_point{}) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (hist_ == nullptr) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    hist_->observe(std::chrono::duration<double>(elapsed).count());
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace esharing::obs
