#pragma once

/// \file registry.h
/// The metric registry: a process-wide (or test-local) table of named
/// counters, gauges and histograms plus an optional JSONL event sink.
///
/// Usage contract for instrumented code: resolve metric handles ONCE (a
/// function-local static struct of references is the idiom used across
/// this repo), gate every update on obs::enabled(), and never let a metric
/// influence control flow. Registration takes a mutex; updates through the
/// returned references are lock-free.
///
/// Metric naming convention (DESIGN.md "Observability"): dotted
/// `<module>.<component>.<metric>` in snake_case, e.g.
/// `geo.spatial_index.nearest_queries`. Timers end in `_seconds`, monetary
/// gauges in `_paid`/`_cost`. Names are part of the public surface — the
/// golden-snapshot test freezes them.

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/sync.h"
#include "core/thread_annotations.h"
#include "obs/event_sink.h"
#include "obs/metrics.h"

namespace esharing::obs {

/// One field of a structured event: `{"key": value}` with a numeric or
/// string value.
struct EventField {
  EventField(std::string_view k, double v) : key(k), num(v), is_num(true) {}
  EventField(std::string_view k, int v)
      : key(k), num(static_cast<double>(v)), is_num(true) {}
  EventField(std::string_view k, std::size_t v)
      : key(k), num(static_cast<double>(v)), is_num(true) {}
  EventField(std::string_view k, std::string_view v) : key(k), str(v) {}
  EventField(std::string_view k, const char* v) : key(k), str(v) {}

  std::string_view key;
  double num{0.0};
  std::string_view str;
  bool is_num{false};
};

/// Point-in-time copy of every registered metric, sorted by name. The JSON
/// and CSV shapes derived from it (export.h) are the machine-readable
/// artifact benches drop next to their output.
struct Snapshot {
  struct CounterSample {
    std::string name;
    std::uint64_t value{0};
  };
  struct GaugeSample {
    std::string name;
    double value{0.0};
  };
  struct HistogramSample {
    std::string name;
    std::vector<double> upper_bounds;
    std::vector<std::uint64_t> buckets;  ///< last entry = overflow bucket
    std::uint64_t count{0};
    double sum{0.0};
  };

  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry every instrumentation site records into.
  static Registry& global();

  /// Find-or-create by name. References stay valid for the registry's
  /// lifetime (metrics are never deleted, only reset).
  /// \throws std::invalid_argument if `name` is empty or already registered
  ///         as a different metric kind.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `upper_bounds` applies on first registration only (later calls return
  /// the existing histogram); empty selects default_time_buckets().
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_bounds = {});

  /// Emit one structured JSONL event (no-op unless enabled() and a sink is
  /// installed). Lines look like
  ///   {"seq":3,"event":"placer.penalty_switch","similarity":72.5,"to":"type_iii"}
  void emit(std::string_view event,
            std::initializer_list<EventField> fields = {});

  void set_event_sink(std::shared_ptr<EventSink> sink);
  [[nodiscard]] std::shared_ptr<EventSink> event_sink() const;

  [[nodiscard]] Snapshot snapshot() const;
  /// Zero every metric and the event sequence; registrations are kept.
  void reset();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  void check_kind(std::string_view name, Kind kind) ES_REQUIRES(mu_);

  mutable es::Mutex mu_;
  std::map<std::string, Kind, std::less<>> kinds_ ES_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      ES_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      ES_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      ES_GUARDED_BY(mu_);
  std::shared_ptr<EventSink> sink_ ES_GUARDED_BY(mu_);
  /// Atomic rather than guarded: emit() stamps it outside the lock.
  std::atomic<std::uint64_t> event_seq_{0};
};

}  // namespace esharing::obs
