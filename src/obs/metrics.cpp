#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace esharing::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      buckets_(upper_bounds_.size() + 1) {
  for (std::size_t i = 1; i < upper_bounds_.size(); ++i) {
    if (!(upper_bounds_[i - 1] < upper_bounds_[i])) {
      throw std::invalid_argument(
          "Histogram: upper_bounds must be strictly ascending");
    }
  }
}

void Histogram::observe(double v) {
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), v);
  const auto b = static_cast<std::size_t>(it - upper_bounds_.begin());
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> default_time_buckets() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};
}

}  // namespace esharing::obs
