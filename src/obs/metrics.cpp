#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace esharing::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : upper_bounds_(std::move(upper_bounds)),
      buckets_(upper_bounds_.size() + 1) {
  for (std::size_t i = 1; i < upper_bounds_.size(); ++i) {
    if (!(upper_bounds_[i - 1] < upper_bounds_[i])) {
      throw std::invalid_argument(
          "Histogram: upper_bounds must be strictly ascending");
    }
  }
}

void Histogram::observe(double v) {
  const auto it =
      std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(), v);
  const auto b = static_cast<std::size_t>(it - upper_bounds_.begin());
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::quantile(double q) const {
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument("Histogram::quantile: q must be in [0, 1]");
  }
  const auto counts = bucket_counts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  // Rank of the target observation, 1-based; q == 0 selects rank 1 so the
  // estimate stays inside the first occupied bucket.
  const double rank = std::max(1.0, q * static_cast<double>(total));
  double cumulative = 0.0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const double in_bucket = static_cast<double>(counts[b]);
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    if (b == upper_bounds_.size()) {
      // Overflow bucket: no finite upper edge to interpolate against.
      return upper_bounds_.empty() ? 0.0 : upper_bounds_.back();
    }
    const double lower = b == 0 ? 0.0 : upper_bounds_[b - 1];
    const double upper = upper_bounds_[b];
    const double fraction = (rank - cumulative) / in_bucket;
    return lower + (upper - lower) * fraction;
  }
  return upper_bounds_.empty() ? 0.0 : upper_bounds_.back();
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> default_time_buckets() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};
}

std::vector<double> default_latency_buckets() {
  return {1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4,
          1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 1e-1, 1.0};
}

}  // namespace esharing::obs
