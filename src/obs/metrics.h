#pragma once

/// \file metrics.h
/// Lock-free metric primitives of the observability layer: named instances
/// live in an obs::Registry; instrumented code holds plain references and
/// updates them with relaxed atomics, so the fast path never takes a lock.
///
/// The whole layer is gated by a single process-wide flag (obs::enabled(),
/// off by default). Instrumentation sites check it before touching any
/// metric, so a disabled build pays one relaxed load + branch per site —
/// indistinguishable from baseline on every bench — and an enabled one pays
/// a handful of uncontended atomic adds. Metrics are strictly
/// observational: they never feed back into algorithm control flow, which
/// is what keeps solver/placer/sim outputs bit-identical with metrics on or
/// off (regression-tested).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace esharing::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Whether instrumentation sites should record. Relaxed read: callers use
/// it as a cheap gate, not as a synchronization point.
[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Flip the process-wide recording flag (default off). Safe to call from
/// any thread at any time; sites observe the change on their next check.
void set_enabled(bool on);

/// Monotonic event count (queries served, rows materialized, ...).
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins scalar (current cost scale, thread count, ...) that also
/// supports accumulation of doubles (total incentives paid).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: `upper_bounds` are the inclusive upper edges of
/// the finite buckets (strictly ascending); one overflow bucket is
/// implicit. Bucket layout is frozen at construction — no allocation or
/// rebinning ever happens on observe(), so concurrent observers only touch
/// atomics.
class Histogram {
 public:
  /// \throws std::invalid_argument if bounds are not strictly ascending.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& upper_bounds() const {
    return upper_bounds_;
  }
  /// Per-bucket counts; index upper_bounds().size() is the overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

  /// Estimate the q-quantile (q in [0, 1]) by linear interpolation inside
  /// the bucket that holds the target rank — the classic fixed-bucket
  /// estimator: resolution is the bucket width, which is exactly the
  /// trade-off that makes observe() lock-free. Conventions:
  ///   * an empty histogram returns 0.0 (nothing observed, nothing late);
  ///   * a rank landing in the overflow bucket returns the largest finite
  ///     bound — the estimate saturates rather than inventing a tail;
  ///   * the first finite bucket interpolates from a lower edge of 0
  ///     (latency-style histograms observe non-negative values).
  /// Reads the buckets with the same relaxed loads as bucket_counts(); a
  /// quantile taken during concurrent recording is a consistent-enough
  /// snapshot for operational monitoring, never a synchronization point.
  /// \throws std::invalid_argument if q is outside [0, 1].
  [[nodiscard]] double quantile(double q) const;

 private:
  std::vector<double> upper_bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default bucket edges for ScopedTimer histograms: 1 µs .. 10 s decades.
[[nodiscard]] std::vector<double> default_time_buckets();

/// Finer 1-2-5 edges (1 µs .. 1 s) for request-latency histograms, where
/// decade buckets are too coarse for p99/p999 interpolation to mean much.
[[nodiscard]] std::vector<double> default_latency_buckets();

/// Amortizing proxy for a Counter on paths too hot to pay one atomic RMW
/// per event (sub-microsecond query loops, per-access cache-hit counts).
/// Events accumulate in a plain integer and flush to the backing Counter
/// every `batch` events and on destruction. The intended use is one
/// function-local `thread_local` shard per site, so the hot path costs a
/// non-atomic increment and a compare; snapshots can lag the truth by at
/// most batch-1 events per live thread.
class CounterShard {
 public:
  explicit CounterShard(Counter& target, std::uint64_t batch = 1024)
      : target_(&target), batch_(batch) {}
  CounterShard(const CounterShard&) = delete;
  CounterShard& operator=(const CounterShard&) = delete;
  ~CounterShard() { flush(); }

  void add(std::uint64_t n = 1) {
    pending_ += n;
    if (pending_ >= batch_) flush();
  }
  void flush() {
    if (pending_ != 0) {
      target_->add(pending_);
      pending_ = 0;
    }
  }
  [[nodiscard]] std::uint64_t pending() const { return pending_; }

 private:
  Counter* target_;
  std::uint64_t batch_;
  std::uint64_t pending_{0};
};

}  // namespace esharing::obs
