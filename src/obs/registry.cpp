#include "obs/registry.h"

#include <stdexcept>
#include <utility>

namespace esharing::obs {

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

void Registry::check_kind(std::string_view name, Kind kind) {
  if (name.empty()) {
    throw std::invalid_argument("Registry: empty metric name");
  }
  const auto it = kinds_.find(name);
  if (it == kinds_.end()) {
    kinds_.emplace(std::string(name), kind);
  } else if (it->second != kind) {
    throw std::invalid_argument("Registry: metric '" + std::string(name) +
                                "' already registered as a different kind");
  }
}

Counter& Registry::counter(std::string_view name) {
  const es::LockGuard lock(mu_);
  check_kind(name, Kind::kCounter);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const es::LockGuard lock(mu_);
  check_kind(name, Kind::kGauge);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> upper_bounds) {
  const es::LockGuard lock(mu_);
  check_kind(name, Kind::kHistogram);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (upper_bounds.empty()) upper_bounds = default_time_buckets();
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
  }
  return *it->second;
}

void Registry::emit(std::string_view event,
                    std::initializer_list<EventField> fields) {
  if (!enabled()) return;
  std::shared_ptr<EventSink> sink;
  {
    const es::LockGuard lock(mu_);
    sink = sink_;
  }
  if (!sink) return;
  std::string line = "{\"seq\":";
  line += std::to_string(event_seq_.fetch_add(1, std::memory_order_relaxed));
  line += ",\"event\":\"";
  line += json_escape(std::string(event));
  line += '"';
  for (const EventField& f : fields) {
    line += ",\"";
    line += json_escape(std::string(f.key));
    line += "\":";
    if (f.is_num) {
      line += json_number(f.num);
    } else {
      line += '"';
      line += json_escape(std::string(f.str));
      line += '"';
    }
  }
  line += '}';
  sink->write(line);
}

void Registry::set_event_sink(std::shared_ptr<EventSink> sink) {
  const es::LockGuard lock(mu_);
  sink_ = std::move(sink);
}

std::shared_ptr<EventSink> Registry::event_sink() const {
  const es::LockGuard lock(mu_);
  return sink_;
}

Snapshot Registry::snapshot() const {
  const es::LockGuard lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back(
        {name, h->upper_bounds(), h->bucket_counts(), h->count(), h->sum()});
  }
  return snap;
}

void Registry::reset() {
  const es::LockGuard lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  event_seq_.store(0, std::memory_order_relaxed);
}

}  // namespace esharing::obs
