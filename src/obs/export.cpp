#include "obs/export.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace esharing::obs {

namespace {

void append_json_histogram(std::string& out,
                           const Snapshot::HistogramSample& h) {
  out += '"';
  out += json_escape(h.name);
  out += "\":{\"upper_bounds\":[";
  for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
    if (i) out += ',';
    out += json_number(h.upper_bounds[i]);
  }
  out += "],\"buckets\":[";
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(h.buckets[i]);
  }
  out += "],\"count\":";
  out += std::to_string(h.count);
  out += ",\"sum\":";
  out += json_number(h.sum);
  out += '}';
}

}  // namespace

std::string to_json(const Snapshot& snapshot) {
  std::string out = "{\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i) out += ',';
    out += '"';
    out += json_escape(snapshot.counters[i].name);
    out += "\":";
    out += std::to_string(snapshot.counters[i].value);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i) out += ',';
    out += '"';
    out += json_escape(snapshot.gauges[i].name);
    out += "\":";
    out += json_number(snapshot.gauges[i].value);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    if (i) out += ',';
    append_json_histogram(out, snapshot.histograms[i]);
  }
  out += "}}";
  return out;
}

std::string to_csv(const Snapshot& snapshot) {
  std::string out = "kind,name,value\n";
  for (const auto& c : snapshot.counters) {
    out += "counter," + c.name + ',' + std::to_string(c.value) + '\n';
  }
  for (const auto& g : snapshot.gauges) {
    out += "gauge," + g.name + ',' + json_number(g.value) + '\n';
  }
  for (const auto& h : snapshot.histograms) {
    out += "histogram," + h.name + ".count," + std::to_string(h.count) + '\n';
    out += "histogram," + h.name + ".sum," + json_number(h.sum) + '\n';
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      const std::string edge = b < h.upper_bounds.size()
                                   ? "le_" + json_number(h.upper_bounds[b])
                                   : std::string("overflow");
      out += "histogram," + h.name + '.' + edge + ',' +
             std::to_string(h.buckets[b]) + '\n';
    }
  }
  return out;
}

bool write_snapshot_json(const Registry& registry, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_json(registry.snapshot()) << '\n';
  return static_cast<bool>(out);
}

std::string metrics_snapshot_path(const std::string& name) {
  const char* dir_env = std::getenv("ESHARING_METRICS_DIR");
  const std::filesystem::path dir =
      dir_env != nullptr && *dir_env != '\0' ? dir_env : "metrics";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  // On creation failure fall back to the bare filename rather than failing
  // the run — a missing snapshot is reported by the writer, not here.
  if (ec) return name + ".metrics.json";
  return (dir / (name + ".metrics.json")).string();
}

}  // namespace esharing::obs
