#pragma once

/// \file event_sink.h
/// Structured JSONL event output. A sink receives one complete JSON object
/// per line (built by Registry::emit); the built-ins cover the three uses:
/// a stream sink for piping into a terminal, a file sink for run artifacts
/// and a memory sink for tests. Events carry a monotonic sequence number
/// instead of wall-clock timestamps so that seeded runs emit bit-identical
/// logs — the same determinism contract as everything else in this repo.

#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "core/sync.h"
#include "core/thread_annotations.h"

namespace esharing::obs {

class EventSink {
 public:
  virtual ~EventSink() = default;
  /// `line` is a complete JSON object without the trailing newline.
  virtual void write(const std::string& line) = 0;
};

/// Writes each event as one line to a caller-owned stream.
class StreamEventSink final : public EventSink {
 public:
  /// The stream must outlive the sink.
  explicit StreamEventSink(std::ostream& out) : out_(&out) {}
  void write(const std::string& line) override;

 private:
  es::Mutex mu_;
  /// Set once at construction; the pointee (the stream) is what concurrent
  /// writers contend on.
  std::ostream* out_ ES_PT_GUARDED_BY(mu_);
};

/// Appends events to `path` (truncates on open).
/// \throws std::runtime_error when the file cannot be opened.
class FileEventSink final : public EventSink {
 public:
  explicit FileEventSink(const std::string& path);
  ~FileEventSink() override;
  void write(const std::string& line) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Buffers events in memory; the test sink.
class MemoryEventSink final : public EventSink {
 public:
  void write(const std::string& line) override;
  [[nodiscard]] std::vector<std::string> lines() const;
  void clear();

 private:
  mutable es::Mutex mu_;
  std::vector<std::string> lines_ ES_GUARDED_BY(mu_);
};

/// JSON string escaping for event/field values (quotes, backslash,
/// control characters).
[[nodiscard]] std::string json_escape(const std::string& s);

/// Shortest-ish stable JSON number: integral values print without a
/// decimal point, others with up to 12 significant digits.
[[nodiscard]] std::string json_number(double v);

}  // namespace esharing::obs
