#pragma once

/// \file grid.h
/// Uniform spatial grid. The paper divides the metropolitan area into
/// 100 x 100 m^2 grids — "the minimum granularity such that users all agree
/// to walk within a grid" — and represents every arrival inside a grid by
/// its centroid. The candidate parking locations N are grid centroids.

#include <cstdint>
#include <optional>
#include <vector>

#include "geo/point.h"

namespace esharing::geo {

/// Discrete cell coordinates (column = x axis, row = y axis).
struct CellId {
  std::int32_t col{0};
  std::int32_t row{0};
  friend constexpr bool operator==(CellId a, CellId b) {
    return a.col == b.col && a.row == b.row;
  }
};

/// Uniform grid over a bounding box with square cells of `cell_size` m.
///
/// Cells are indexed row-major: index = row * cols + col. Points on the
/// max edge of the box are clamped into the last row/column so that every
/// point of the closed box maps to a valid cell.
class Grid {
 public:
  /// \throws std::invalid_argument if the box is degenerate or
  ///         cell_size <= 0.
  Grid(BoundingBox box, double cell_size);

  [[nodiscard]] const BoundingBox& box() const { return box_; }
  [[nodiscard]] double cell_size() const { return cell_size_; }
  [[nodiscard]] std::int32_t cols() const { return cols_; }
  [[nodiscard]] std::int32_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cell_count() const {
    return static_cast<std::size_t>(cols_) * static_cast<std::size_t>(rows_);
  }

  /// Cell containing `p`, or nullopt if `p` lies outside the box.
  [[nodiscard]] std::optional<CellId> cell_of(Point p) const;

  /// Cell containing `p` with out-of-box points clamped to the border cell.
  [[nodiscard]] CellId clamped_cell_of(Point p) const;

  /// Row-major linear index of a cell.
  /// \throws std::out_of_range if the cell is outside the grid.
  [[nodiscard]] std::size_t index_of(CellId c) const;

  /// Inverse of index_of.
  /// \throws std::out_of_range if the index is outside the grid.
  [[nodiscard]] CellId cell_at(std::size_t index) const;

  /// Centroid (cell center) of a cell — the paper's representative point
  /// for all arrivals inside the cell.
  [[nodiscard]] Point centroid_of(CellId c) const;

  /// Centroids of all cells in row-major order.
  [[nodiscard]] std::vector<Point> all_centroids() const;

  /// Per-cell occupancy counts of a point set (out-of-box points are
  /// clamped to the nearest border cell).
  [[nodiscard]] std::vector<std::size_t> histogram(
      const std::vector<Point>& pts) const;

 private:
  [[nodiscard]] bool in_grid(CellId c) const {
    return c.col >= 0 && c.col < cols_ && c.row >= 0 && c.row < rows_;
  }

  BoundingBox box_;
  double cell_size_;
  std::int32_t cols_;
  std::int32_t rows_;
};

}  // namespace esharing::geo
