#include "geo/grid.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace esharing::geo {

Grid::Grid(BoundingBox box, double cell_size)
    : box_(box), cell_size_(cell_size) {
  if (!(cell_size > 0.0)) {
    throw std::invalid_argument("Grid: cell_size must be positive");
  }
  if (!(box.width() > 0.0) || !(box.height() > 0.0)) {
    throw std::invalid_argument("Grid: bounding box must have positive area");
  }
  cols_ = static_cast<std::int32_t>(std::ceil(box.width() / cell_size));
  rows_ = static_cast<std::int32_t>(std::ceil(box.height() / cell_size));
}

std::optional<CellId> Grid::cell_of(Point p) const {
  if (p.x < box_.min.x || p.y < box_.min.y || p.x > box_.max.x ||
      p.y > box_.max.y) {
    return std::nullopt;
  }
  return clamped_cell_of(p);
}

CellId Grid::clamped_cell_of(Point p) const {
  auto clamp_axis = [](double v, double lo, double size, std::int32_t n) {
    const auto raw = static_cast<std::int32_t>(std::floor((v - lo) / size));
    return std::clamp(raw, std::int32_t{0}, n - 1);
  };
  return {clamp_axis(p.x, box_.min.x, cell_size_, cols_),
          clamp_axis(p.y, box_.min.y, cell_size_, rows_)};
}

std::size_t Grid::index_of(CellId c) const {
  if (!in_grid(c)) throw std::out_of_range("Grid::index_of: cell outside grid");
  return static_cast<std::size_t>(c.row) * static_cast<std::size_t>(cols_) +
         static_cast<std::size_t>(c.col);
}

CellId Grid::cell_at(std::size_t index) const {
  if (index >= cell_count()) {
    throw std::out_of_range("Grid::cell_at: index outside grid");
  }
  const auto cols = static_cast<std::size_t>(cols_);
  return {static_cast<std::int32_t>(index % cols),
          static_cast<std::int32_t>(index / cols)};
}

Point Grid::centroid_of(CellId c) const {
  if (!in_grid(c)) {
    throw std::out_of_range("Grid::centroid_of: cell outside grid");
  }
  return {box_.min.x + (static_cast<double>(c.col) + 0.5) * cell_size_,
          box_.min.y + (static_cast<double>(c.row) + 0.5) * cell_size_};
}

std::vector<Point> Grid::all_centroids() const {
  std::vector<Point> out;
  out.reserve(cell_count());
  for (std::size_t i = 0; i < cell_count(); ++i) {
    out.push_back(centroid_of(cell_at(i)));
  }
  return out;
}

std::vector<std::size_t> Grid::histogram(const std::vector<Point>& pts) const {
  std::vector<std::size_t> counts(cell_count(), 0);
  for (Point p : pts) {
    ++counts[index_of(clamped_cell_of(p))];
  }
  return counts;
}

}  // namespace esharing::geo
