#pragma once

/// \file latlon.h
/// Geographic coordinates and the projection between the WGS-84 sphere and
/// the local planar frame used by the optimization algorithms. The Mobike
/// dataset (and our synthetic replacement) stores geohashed lat/lon pairs;
/// all costs in the paper are measured in meters, so trips are projected
/// into a local equirectangular frame anchored at a reference coordinate.

#include "geo/point.h"

namespace esharing::geo {

/// WGS-84 geographic coordinate in decimal degrees.
struct LatLon {
  double lat{0.0};  ///< latitude, degrees in [-90, 90]
  double lon{0.0};  ///< longitude, degrees in [-180, 180]

  friend constexpr bool operator==(LatLon a, LatLon b) {
    return a.lat == b.lat && a.lon == b.lon;
  }
};

/// Mean Earth radius in meters (IUGG).
inline constexpr double kEarthRadiusM = 6371008.8;

/// Great-circle distance between two coordinates, in meters.
[[nodiscard]] double haversine_m(LatLon a, LatLon b);

/// Equirectangular projection anchored at a reference coordinate.
///
/// Over metropolitan extents (a few kilometers, as in the paper's 3x3 km^2
/// study field) the distortion relative to the true great-circle metric is
/// far below the 100 m grid granularity, so Euclidean distance in the
/// projected frame is a faithful stand-in for walking distance.
class LocalProjection {
 public:
  explicit LocalProjection(LatLon origin);

  /// Project a geographic coordinate to local meters (x east, y north).
  [[nodiscard]] Point to_local(LatLon c) const;

  /// Inverse projection from local meters back to geographic degrees.
  [[nodiscard]] LatLon to_geo(Point p) const;

  [[nodiscard]] LatLon origin() const { return origin_; }

 private:
  LatLon origin_;
  double meters_per_deg_lat_;
  double meters_per_deg_lon_;
};

}  // namespace esharing::geo
