#include "geo/latlon.h"

#include <cmath>
#include <numbers>

namespace esharing::geo {

namespace {
constexpr double kDegToRad = std::numbers::pi / 180.0;
}  // namespace

double haversine_m(LatLon a, LatLon b) {
  const double phi1 = a.lat * kDegToRad;
  const double phi2 = b.lat * kDegToRad;
  const double dphi = (b.lat - a.lat) * kDegToRad;
  const double dlam = (b.lon - a.lon) * kDegToRad;
  const double s = std::sin(dphi / 2.0);
  const double t = std::sin(dlam / 2.0);
  const double h = s * s + std::cos(phi1) * std::cos(phi2) * t * t;
  return 2.0 * kEarthRadiusM * std::asin(std::min(1.0, std::sqrt(h)));
}

LocalProjection::LocalProjection(LatLon origin)
    : origin_(origin),
      meters_per_deg_lat_(kEarthRadiusM * kDegToRad),
      meters_per_deg_lon_(kEarthRadiusM * kDegToRad *
                          std::cos(origin.lat * kDegToRad)) {}

Point LocalProjection::to_local(LatLon c) const {
  return {(c.lon - origin_.lon) * meters_per_deg_lon_,
          (c.lat - origin_.lat) * meters_per_deg_lat_};
}

LatLon LocalProjection::to_geo(Point p) const {
  return {origin_.lat + p.y / meters_per_deg_lat_,
          origin_.lon + p.x / meters_per_deg_lon_};
}

}  // namespace esharing::geo
