#include "geo/polygon.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace esharing::geo {

Polygon::Polygon(std::vector<Point> vertices) : vertices_(std::move(vertices)) {
  if (vertices_.size() < 3) {
    throw std::invalid_argument("Polygon: need at least 3 vertices");
  }
}

bool Polygon::contains(Point p) const {
  // Even-odd rule with the half-open convention: count edge crossings of
  // the horizontal ray to +infinity.
  bool inside = false;
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point a = vertices_[j];
    const Point b = vertices_[i];
    const bool straddles = (b.y > p.y) != (a.y > p.y);
    if (straddles) {
      const double x_cross = b.x + (p.y - b.y) * (a.x - b.x) / (a.y - b.y);
      if (p.x < x_cross) inside = !inside;
    }
  }
  return inside;
}

double Polygon::signed_area() const {
  double twice = 0.0;
  const std::size_t n = vertices_.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    twice += vertices_[j].x * vertices_[i].y - vertices_[i].x * vertices_[j].y;
  }
  return twice / 2.0;
}

double Polygon::area() const { return std::abs(signed_area()); }

BoundingBox Polygon::bounds() const { return bounding_box(vertices_); }

Polygon Polygon::rectangle(const BoundingBox& box) {
  return Polygon({{box.min.x, box.min.y},
                  {box.max.x, box.min.y},
                  {box.max.x, box.max.y},
                  {box.min.x, box.max.y}});
}

Polygon convex_hull(std::vector<Point> pts) {
  std::sort(pts.begin(), pts.end(), [](Point a, Point b) {
    if (a.x != b.x) return a.x < b.x;
    return a.y < b.y;
  });
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  if (pts.size() < 3) {
    throw std::invalid_argument("convex_hull: need at least 3 distinct points");
  }
  const auto cross = [](Point o, Point a, Point b) {
    return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
  };
  std::vector<Point> hull(2 * pts.size());
  std::size_t k = 0;
  for (const Point& p : pts) {  // lower hull
    while (k >= 2 && cross(hull[k - 2], hull[k - 1], p) <= 0.0) --k;
    hull[k++] = p;
  }
  const std::size_t lower = k + 1;
  for (std::size_t i = pts.size() - 1; i-- > 0;) {  // upper hull
    const Point& p = pts[i];
    while (k >= lower && cross(hull[k - 2], hull[k - 1], p) <= 0.0) --k;
    hull[k++] = p;
  }
  hull.resize(k - 1);
  if (hull.size() < 3) {
    throw std::invalid_argument("convex_hull: points are collinear");
  }
  return Polygon(std::move(hull));
}

bool ZoneSet::permits(Point p) const {
  for (const Polygon& zone : forbidden_) {
    if (zone.contains(p)) return false;
  }
  if (allowed_.empty()) return true;
  for (const Polygon& zone : allowed_) {
    if (zone.contains(p)) return true;
  }
  return false;
}

}  // namespace esharing::geo
