#pragma once

/// \file spatial_index.h
/// Uniform grid-bucket spatial index: the shared query substrate for every
/// distance-consuming layer (offline solvers, online placers, incentive
/// neighbor search, simulation bike/station matching). Replaces the O(n)
/// linear scans of geo::nearest_index with O(1)-expected bucketed lookups
/// while preserving their exact semantics:
///
///   * `nearest` returns the active point with minimum Euclidean distance,
///     ties broken by the smallest insertion id — byte-identical to a
///     first-strict-minimum linear scan in insertion order;
///   * `within_radius` returns ids in ascending order with an inclusive
///     (d <= r) boundary;
///   * results never depend on the cell size or on when internal rebuilds
///     happened, only on the insert/deactivate history (the determinism
///     contract relied on by the solver regression tests).
///
/// Points are immutable once inserted; deletion is modeled as deactivation
/// (footnote 2 of the paper removes stations that may later be
/// re-established as fresh insertions). Cell sizing is automatic by
/// default: the index tracks the bounding box of inserted points and
/// rehashes at geometric size thresholds so that cells hold O(1) points
/// regardless of the coordinate scale the caller works in.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "geo/point.h"

namespace esharing::geo {

class SpatialIndex {
 public:
  /// Sentinel id: "no point" (empty index, all deactivated, or excluded).
  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

  /// Auto cell sizing (recommended): the index adapts the bucket size to
  /// the observed point extent and count.
  SpatialIndex();

  /// Fixed cell size in meters (e.g. the paper's 100 m demand grid).
  /// \throws std::invalid_argument if cell_size <= 0.
  explicit SpatialIndex(double cell_size);

  /// Bulk-build over `pts` (ids are 0..pts.size()-1 in input order).
  /// `cell_size` <= 0 selects automatic sizing.
  explicit SpatialIndex(const std::vector<Point>& pts, double cell_size = 0.0);

  /// Insert a point; returns its id (insertion order, starting at 0).
  std::size_t insert(Point p);

  /// Deactivate a point: it is skipped by all queries but keeps its id.
  /// Idempotent. \throws std::out_of_range on invalid ids.
  void deactivate(std::size_t id);

  /// Re-activate a previously deactivated point. Idempotent.
  /// \throws std::out_of_range on invalid ids.
  void activate(std::size_t id);

  [[nodiscard]] bool is_active(std::size_t id) const;
  /// \throws std::out_of_range on invalid ids.
  [[nodiscard]] Point point(std::size_t id) const;
  /// Total number of inserted points (active + deactivated).
  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] std::size_t active_count() const { return active_count_; }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  /// Current bucket edge length in meters (may change on auto rebuilds).
  [[nodiscard]] double cell_size() const { return cell_; }

  /// Id of the active point nearest to `q` (ties: smallest id), or `npos`
  /// when no active point exists. `exclude` skips one id (self-queries).
  /// Const queries are safe to run concurrently; mutations are not.
  [[nodiscard]] std::size_t nearest(Point q, std::size_t exclude = npos) const;

  /// Ids of all active points with distance2(p, q) <= radius * radius
  /// (inclusive, compared on squared values so the boundary is exact), in
  /// ascending id order. Negative radius yields an empty result.
  [[nodiscard]] std::vector<std::size_t> within_radius(Point q,
                                                       double radius) const;

  /// nearest() for every query point, evaluated in parallel on the exec
  /// pool (`width` lanes, 0 = pool width). out[k] == nearest(queries[k]);
  /// bit-identical to the sequential loop at any width. Requires no
  /// concurrent mutation (same rule as single const queries).
  [[nodiscard]] std::vector<std::size_t> nearest_batch(
      const std::vector<Point>& queries, std::size_t width = 0) const;

  /// within_radius() for every query point, in parallel on the exec pool.
  /// out[k] == within_radius(queries[k], radius).
  [[nodiscard]] std::vector<std::vector<std::size_t>> within_radius_batch(
      const std::vector<Point>& queries, double radius,
      std::size_t width = 0) const;

 private:
  struct CellKey {
    std::int64_t cx{0};
    std::int64_t cy{0};
    friend bool operator==(CellKey a, CellKey b) {
      return a.cx == b.cx && a.cy == b.cy;
    }
  };
  struct CellKeyHash {
    std::size_t operator()(CellKey k) const {
      // Fibonacci mixing of the two coordinates; collisions only cost a
      // bucket-list walk inside unordered_map, never correctness.
      std::uint64_t h = static_cast<std::uint64_t>(k.cx) * 0x9E3779B97F4A7C15ULL;
      h ^= static_cast<std::uint64_t>(k.cy) + 0x9E3779B97F4A7C15ULL +
           (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };

  [[nodiscard]] CellKey cell_of(Point p) const;
  void insert_into_buckets(std::size_t id);
  /// Re-bucket every point with a cell size fitted to the current extent.
  void rebuild();
  /// Scan one bucket, updating the running (d2, id) lexicographic minimum.
  void scan_cell(CellKey key, Point q, std::size_t exclude, double& best_d2,
                 std::size_t& best_id) const;
  /// Direct scan over every point, seeded with a running minimum; the
  /// bounded escape hatch for degenerate fixed-cell/extent combinations.
  [[nodiscard]] std::size_t nearest_direct(Point q, std::size_t exclude,
                                           double best_d2,
                                           std::size_t best_id) const;

  bool auto_cell_{true};
  double cell_{1.0};
  std::vector<Point> points_;
  /// Structure-of-arrays coordinate planes mirroring points_: bucket and
  /// direct scans read these contiguous lanes instead of striding through
  /// Point pairs — same doubles, so identical distances (SoA-vs-scalar
  /// bit-identity is regression-tested).
  std::vector<double> xs_;
  std::vector<double> ys_;
  std::vector<char> active_;  ///< char, not bool: per-slot writes stay independent
  std::size_t active_count_{0};
  std::unordered_map<CellKey, std::vector<std::uint32_t>, CellKeyHash> buckets_;
  BoundingBox bounds_{};          ///< bbox of all inserted points
  CellKey cell_lo_{};             ///< cell-coordinate bounds of inserted points
  CellKey cell_hi_{};
  std::size_t rebuild_at_{32};    ///< next auto-rebuild size threshold
};

/// Smallest pairwise Euclidean distance of `pts` (infinity for < 2 points),
/// computed with O(n) nearest-neighbor queries instead of the O(n^2)
/// pairwise loop. Equals min over pairs of geo::distance exactly.
[[nodiscard]] double min_pairwise_distance(const std::vector<Point>& pts);

}  // namespace esharing::geo
