#pragma once

/// \file polygon.h
/// Simple polygons for service-area and no-parking zones. The paper's
/// premise is regulatory: "many municipalities do not allow E-bikes to
/// park uncoordinately at random locations" — operationally that means
/// the operator maintains allowed/forbidden zones and every parking the
/// online algorithm establishes must respect them (see
/// core::DeviationPlacerConfig::placement_filter).

#include <vector>

#include "geo/point.h"

namespace esharing::geo {

/// A simple (non-self-intersecting) polygon given by its vertices in
/// order; the closing edge back to the first vertex is implicit.
class Polygon {
 public:
  /// \throws std::invalid_argument with fewer than 3 vertices.
  explicit Polygon(std::vector<Point> vertices);

  [[nodiscard]] const std::vector<Point>& vertices() const { return vertices_; }

  /// Even-odd (ray casting) point-in-polygon test. Boundary points count
  /// as inside on the lower/left edges (half-open convention, consistent
  /// for tiling).
  [[nodiscard]] bool contains(Point p) const;

  /// Signed area (positive for counter-clockwise vertex order).
  [[nodiscard]] double signed_area() const;
  [[nodiscard]] double area() const;

  [[nodiscard]] BoundingBox bounds() const;

  /// Axis-aligned rectangle helper.
  [[nodiscard]] static Polygon rectangle(const BoundingBox& box);

 private:
  std::vector<Point> vertices_;
};

/// Convex hull (monotone chain) of a point set, counter-clockwise, without
/// collinear points on the hull edges.
/// \throws std::invalid_argument with fewer than 3 distinct points.
[[nodiscard]] Polygon convex_hull(std::vector<Point> pts);

/// A set of allowed and forbidden zones: a point qualifies when it lies in
/// at least one allowed zone (or no allowed zones are given) and in no
/// forbidden zone.
class ZoneSet {
 public:
  void add_allowed(Polygon zone) { allowed_.push_back(std::move(zone)); }
  void add_forbidden(Polygon zone) { forbidden_.push_back(std::move(zone)); }

  [[nodiscard]] bool permits(Point p) const;
  [[nodiscard]] std::size_t allowed_count() const { return allowed_.size(); }
  [[nodiscard]] std::size_t forbidden_count() const { return forbidden_.size(); }

 private:
  std::vector<Polygon> allowed_;
  std::vector<Polygon> forbidden_;
};

}  // namespace esharing::geo
