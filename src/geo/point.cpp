#include "geo/point.h"

#include <algorithm>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace esharing::geo {

BoundingBox BoundingBox::expanded_to(Point p) const {
  return {{std::min(min.x, p.x), std::min(min.y, p.y)},
          {std::max(max.x, p.x), std::max(max.y, p.y)}};
}

BoundingBox BoundingBox::inflated(double margin) const {
  return {{min.x - margin, min.y - margin}, {max.x + margin, max.y + margin}};
}

BoundingBox bounding_box(const std::vector<Point>& pts) {
  if (pts.empty()) throw std::invalid_argument("bounding_box: empty point set");
  BoundingBox box{pts.front(), pts.front()};
  for (Point p : pts) box = box.expanded_to(p);
  return box;
}

Point centroid(const std::vector<Point>& pts) {
  if (pts.empty()) throw std::invalid_argument("centroid: empty point set");
  Point sum;
  for (Point p : pts) sum = sum + p;
  return sum / static_cast<double>(pts.size());
}

std::size_t nearest_index(const std::vector<Point>& pts, Point p) {
  if (pts.empty()) throw std::invalid_argument("nearest_index: empty point set");
  std::size_t best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const double d2 = distance2(pts[i], p);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = i;
    }
  }
  return best;
}

std::ostream& operator<<(std::ostream& os, Point p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

}  // namespace esharing::geo
