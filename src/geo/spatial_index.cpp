#include "geo/spatial_index.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "exec/thread_pool.h"
#include "obs/registry.h"

namespace esharing::geo {

namespace {

/// Handles resolved once; updates are gated on obs::enabled() and never
/// influence query results.
struct IndexMetrics {
  obs::Counter& nearest_queries;
  obs::Counter& nearest_cells_scanned;
  obs::Counter& nearest_direct_fallbacks;
  obs::Counter& radius_queries;
  obs::Counter& rebuilds;

  static IndexMetrics& get() {
    static IndexMetrics m{
        obs::Registry::global().counter("geo.spatial_index.nearest_queries"),
        obs::Registry::global().counter(
            "geo.spatial_index.nearest_cells_scanned"),
        obs::Registry::global().counter(
            "geo.spatial_index.nearest_direct_fallbacks"),
        obs::Registry::global().counter("geo.spatial_index.radius_queries"),
        obs::Registry::global().counter("geo.spatial_index.rebuilds"),
    };
    return m;
  }
};

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Cell edge fitted to the observed extent: ~1 point per cell on uniform
/// data, floored so the occupied region never exceeds ~4096 cells per axis
/// (bounds ring scans even on adversarially sparse sets).
double suggest_cell(const BoundingBox& box, std::size_t n) {
  const double extent = std::max({box.width(), box.height(), 1e-9});
  const double target =
      extent / std::sqrt(static_cast<double>(std::max<std::size_t>(n, 1)));
  return std::max(target, extent / 4096.0);
}

std::int64_t cell_coord(double v, double cell) {
  return static_cast<std::int64_t>(std::floor(v / cell));
}

}  // namespace

SpatialIndex::SpatialIndex() = default;

SpatialIndex::SpatialIndex(double cell_size) : auto_cell_(false), cell_(cell_size) {
  if (!(cell_size > 0.0)) {
    throw std::invalid_argument("SpatialIndex: cell_size must be positive");
  }
}

SpatialIndex::SpatialIndex(const std::vector<Point>& pts, double cell_size) {
  if (cell_size > 0.0) {
    auto_cell_ = false;
    cell_ = cell_size;
  } else if (!pts.empty()) {
    cell_ = suggest_cell(bounding_box(pts), pts.size());
  }
  points_.reserve(pts.size());
  for (Point p : pts) insert(p);
  if (auto_cell_) rebuild_at_ = std::max<std::size_t>(32, points_.size() * 4);
}

SpatialIndex::CellKey SpatialIndex::cell_of(Point p) const {
  return {cell_coord(p.x, cell_), cell_coord(p.y, cell_)};
}

std::size_t SpatialIndex::insert(Point p) {
  const std::size_t id = points_.size();
  points_.push_back(p);
  xs_.push_back(p.x);
  ys_.push_back(p.y);
  active_.push_back(1);
  ++active_count_;
  bounds_ = id == 0 ? BoundingBox{p, p} : bounds_.expanded_to(p);

  const double extent = std::max(bounds_.width(), bounds_.height());
  if (auto_cell_ && (points_.size() >= rebuild_at_ || extent > cell_ * 1024.0)) {
    rebuild();
  } else {
    insert_into_buckets(id);
  }
  return id;
}

void SpatialIndex::insert_into_buckets(std::size_t id) {
  const CellKey key = cell_of(points_[id]);
  if (points_.size() == 1 || buckets_.empty()) {
    cell_lo_ = cell_hi_ = key;
  } else {
    cell_lo_ = {std::min(cell_lo_.cx, key.cx), std::min(cell_lo_.cy, key.cy)};
    cell_hi_ = {std::max(cell_hi_.cx, key.cx), std::max(cell_hi_.cy, key.cy)};
  }
  buckets_[key].push_back(static_cast<std::uint32_t>(id));
}

void SpatialIndex::rebuild() {
  if (obs::enabled()) IndexMetrics::get().rebuilds.add();
  cell_ = suggest_cell(bounds_, points_.size());
  buckets_.clear();
  for (std::size_t id = 0; id < points_.size(); ++id) insert_into_buckets(id);
  rebuild_at_ = std::max<std::size_t>(32, points_.size() * 4);
}

void SpatialIndex::deactivate(std::size_t id) {
  if (id >= points_.size()) throw std::out_of_range("SpatialIndex::deactivate");
  if (active_[id]) {
    active_[id] = 0;
    --active_count_;
  }
}

void SpatialIndex::activate(std::size_t id) {
  if (id >= points_.size()) throw std::out_of_range("SpatialIndex::activate");
  if (!active_[id]) {
    active_[id] = 1;
    ++active_count_;
  }
}

bool SpatialIndex::is_active(std::size_t id) const {
  if (id >= points_.size()) throw std::out_of_range("SpatialIndex::is_active");
  return active_[id] != 0;
}

Point SpatialIndex::point(std::size_t id) const {
  if (id >= points_.size()) throw std::out_of_range("SpatialIndex::point");
  return points_[id];
}

void SpatialIndex::scan_cell(CellKey key, Point q, std::size_t exclude,
                             double& best_d2, std::size_t& best_id) const {
  const auto it = buckets_.find(key);
  if (it == buckets_.end()) return;
  for (const std::uint32_t raw : it->second) {
    const auto id = static_cast<std::size_t>(raw);
    if (!active_[id] || id == exclude) continue;
    // SoA plane read; dx*dx + dy*dy is exactly distance2(points_[id], q).
    const double dx = xs_[id] - q.x;
    const double dy = ys_[id] - q.y;
    const double d2 = dx * dx + dy * dy;
    if (d2 < best_d2 || (d2 == best_d2 && id < best_id)) {
      best_d2 = d2;
      best_id = id;
    }
  }
}

std::size_t SpatialIndex::nearest_direct(Point q, std::size_t exclude,
                                         double best_d2,
                                         std::size_t best_id) const {
  for (std::size_t id = 0; id < points_.size(); ++id) {
    if (!active_[id] || id == exclude) continue;
    const double dx = xs_[id] - q.x;
    const double dy = ys_[id] - q.y;
    const double d2 = dx * dx + dy * dy;
    if (d2 < best_d2 || (d2 == best_d2 && id < best_id)) {
      best_d2 = d2;
      best_id = id;
    }
  }
  return best_id;
}

std::size_t SpatialIndex::nearest(Point q, std::size_t exclude) const {
  if (obs::enabled()) {
    // Sub-microsecond hot path (every online request, every bike↔station
    // match) — batch per thread instead of one RMW per query.
    thread_local obs::CounterShard queries(
        IndexMetrics::get().nearest_queries);
    queries.add();
  }
  if (active_count_ == 0) return npos;
  const std::int64_t qx = cell_coord(q.x, cell_);
  const std::int64_t qy = cell_coord(q.y, cell_);

  // Expanding Chebyshev rings around the query cell, clipped to the
  // occupied cell bounds. A cell at ring rho+1 is separated from q's cell
  // by at least rho full cells along some axis, so once the current best
  // beats rho*cell strictly no farther ring can improve it or tie it.
  const std::int64_t rho_start =
      std::max<std::int64_t>({0, cell_lo_.cx - qx, qx - cell_hi_.cx,
                              cell_lo_.cy - qy, qy - cell_hi_.cy});
  const std::int64_t rho_max = std::max(
      std::max(std::llabs(qx - cell_lo_.cx), std::llabs(qx - cell_hi_.cx)),
      std::max(std::llabs(qy - cell_lo_.cy), std::llabs(qy - cell_hi_.cy)));

  double best_d2 = kInf;
  std::size_t best_id = npos;
  std::size_t cells_visited = 0;
  for (std::int64_t rho = rho_start; rho <= rho_max; ++rho) {
    // Degenerate geometry guard (tiny fixed cells over a huge sparse
    // extent): once the ring sweep has cost about a full bucket sweep,
    // finish with a direct scan — same comparator, so the same id.
    if (cells_visited > buckets_.size() + 64) {
      if (obs::enabled()) {
        IndexMetrics::get().nearest_direct_fallbacks.add();
        IndexMetrics::get().nearest_cells_scanned.add(cells_visited);
      }
      return nearest_direct(q, exclude, best_d2, best_id);
    }
    const std::int64_t x0 = std::max(qx - rho, cell_lo_.cx);
    const std::int64_t x1 = std::min(qx + rho, cell_hi_.cx);
    // Top and bottom rows of the ring.
    if (qy + rho <= cell_hi_.cy && qy + rho >= cell_lo_.cy) {
      for (std::int64_t x = x0; x <= x1; ++x) {
        ++cells_visited;
        scan_cell({x, qy + rho}, q, exclude, best_d2, best_id);
      }
    }
    if (rho > 0 && qy - rho >= cell_lo_.cy && qy - rho <= cell_hi_.cy) {
      for (std::int64_t x = x0; x <= x1; ++x) {
        ++cells_visited;
        scan_cell({x, qy - rho}, q, exclude, best_d2, best_id);
      }
    }
    // Left and right columns (corners already covered by the rows).
    if (rho > 0) {
      const std::int64_t y0 = std::max(qy - rho + 1, cell_lo_.cy);
      const std::int64_t y1 = std::min(qy + rho - 1, cell_hi_.cy);
      if (qx - rho >= cell_lo_.cx && qx - rho <= cell_hi_.cx) {
        for (std::int64_t y = y0; y <= y1; ++y) {
          ++cells_visited;
          scan_cell({qx - rho, y}, q, exclude, best_d2, best_id);
        }
      }
      if (qx + rho <= cell_hi_.cx && qx + rho >= cell_lo_.cx) {
        for (std::int64_t y = y0; y <= y1; ++y) {
          ++cells_visited;
          scan_cell({qx + rho, y}, q, exclude, best_d2, best_id);
        }
      }
    }
    if (best_id != npos) {
      const double lim = static_cast<double>(rho) * cell_;
      if (lim * lim > best_d2) break;
    }
  }
  if (obs::enabled()) {
    thread_local obs::CounterShard cells(
        IndexMetrics::get().nearest_cells_scanned, 4096);
    cells.add(cells_visited);
  }
  return best_id;
}

std::vector<std::size_t> SpatialIndex::within_radius(Point q,
                                                     double radius) const {
  if (obs::enabled()) IndexMetrics::get().radius_queries.add();
  std::vector<std::size_t> out;
  if (active_count_ == 0 || radius < 0.0) return out;
  const double r2 = radius * radius;
  const std::int64_t x0 = std::max(cell_coord(q.x - radius, cell_), cell_lo_.cx);
  const std::int64_t x1 = std::min(cell_coord(q.x + radius, cell_), cell_hi_.cx);
  const std::int64_t y0 = std::max(cell_coord(q.y - radius, cell_), cell_lo_.cy);
  const std::int64_t y1 = std::min(cell_coord(q.y + radius, cell_), cell_hi_.cy);
  if (x1 < x0 || y1 < y0) return out;
  // When the candidate rectangle holds more cells than the bucket table
  // (tiny fixed cells over a huge sparse extent), sweeping the occupied
  // buckets is strictly cheaper; the sort below makes both orders agree.
  const auto w = static_cast<std::uint64_t>(x1 - x0 + 1);
  const auto h = static_cast<std::uint64_t>(y1 - y0 + 1);
  const bool rect_too_big =
      w > buckets_.size() || h > buckets_.size() || w * h > buckets_.size();
  auto scan_bucket = [&](const std::vector<std::uint32_t>& members) {
    for (const std::uint32_t raw : members) {
      const auto id = static_cast<std::size_t>(raw);
      if (!active_[id]) continue;
      const double dx = xs_[id] - q.x;
      const double dy = ys_[id] - q.y;
      if (dx * dx + dy * dy <= r2) out.push_back(id);
    }
  };
  if (rect_too_big) {
    for (const auto& [key, members] : buckets_) {
      if (key.cx < x0 || key.cx > x1 || key.cy < y0 || key.cy > y1) continue;
      scan_bucket(members);
    }
  } else {
    for (std::int64_t cx = x0; cx <= x1; ++cx) {
      for (std::int64_t cy = y0; cy <= y1; ++cy) {
        const auto it = buckets_.find({cx, cy});
        if (it != buckets_.end()) scan_bucket(it->second);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::size_t> SpatialIndex::nearest_batch(
    const std::vector<Point>& queries, std::size_t width) const {
  std::vector<std::size_t> out(queries.size(), npos);
  // Per-index writes; each nearest() is independent, so any chunking and
  // width produce the same vector. Individual queries are microseconds, so
  // the grain amortizes chunk claiming over a block of them.
  exec::parallel_for(
      queries.size(), /*grain=*/64,
      [&](std::size_t b, std::size_t e, std::size_t) {
        for (std::size_t k = b; k < e; ++k) out[k] = nearest(queries[k]);
      },
      width);
  return out;
}

std::vector<std::vector<std::size_t>> SpatialIndex::within_radius_batch(
    const std::vector<Point>& queries, double radius, std::size_t width) const {
  std::vector<std::vector<std::size_t>> out(queries.size());
  exec::parallel_for(
      queries.size(), /*grain=*/64,
      [&](std::size_t b, std::size_t e, std::size_t) {
        for (std::size_t k = b; k < e; ++k) {
          out[k] = within_radius(queries[k], radius);
        }
      },
      width);
  return out;
}

double min_pairwise_distance(const std::vector<Point>& pts) {
  if (pts.size() < 2) return kInf;
  const SpatialIndex index(pts);
  double min_d = kInf;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const std::size_t j = index.nearest(pts[i], i);
    if (j != SpatialIndex::npos) {
      min_d = std::min(min_d, distance(pts[i], pts[j]));
    }
  }
  return min_d;
}

}  // namespace esharing::geo
