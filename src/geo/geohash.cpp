#include "geo/geohash.h"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace esharing::geo {

namespace {

constexpr std::string_view kBase32 = "0123456789bcdefghjkmnpqrstuvwxyz";

/// Reverse lookup from ASCII to base-32 value; -1 marks invalid digits.
constexpr std::array<int, 128> make_reverse_table() {
  std::array<int, 128> table{};
  for (auto& v : table) v = -1;
  for (int i = 0; i < static_cast<int>(kBase32.size()); ++i) {
    table[static_cast<unsigned char>(kBase32[static_cast<std::size_t>(i)])] = i;
  }
  return table;
}

constexpr std::array<int, 128> kReverse = make_reverse_table();

}  // namespace

std::string geohash_encode(LatLon c, int precision) {
  if (precision < 1 || precision > 22) {
    throw std::invalid_argument("geohash_encode: precision must be in [1, 22]");
  }
  if (c.lat < -90.0 || c.lat > 90.0 || c.lon < -180.0 || c.lon > 180.0) {
    throw std::invalid_argument("geohash_encode: coordinate out of range");
  }
  double lat_lo = -90.0, lat_hi = 90.0;
  double lon_lo = -180.0, lon_hi = 180.0;
  std::string out;
  out.reserve(static_cast<std::size_t>(precision));
  bool even_bit = true;  // geohash interleaves starting with longitude
  int bits = 0;
  int value = 0;
  while (static_cast<int>(out.size()) < precision) {
    if (even_bit) {
      const double mid = (lon_lo + lon_hi) / 2.0;
      if (c.lon >= mid) {
        value = value * 2 + 1;
        lon_lo = mid;
      } else {
        value *= 2;
        lon_hi = mid;
      }
    } else {
      const double mid = (lat_lo + lat_hi) / 2.0;
      if (c.lat >= mid) {
        value = value * 2 + 1;
        lat_lo = mid;
      } else {
        value *= 2;
        lat_hi = mid;
      }
    }
    even_bit = !even_bit;
    if (++bits == 5) {
      out.push_back(kBase32[static_cast<std::size_t>(value)]);
      bits = 0;
      value = 0;
    }
  }
  return out;
}

GeohashCell geohash_decode(std::string_view hash) {
  if (hash.empty()) throw std::invalid_argument("geohash_decode: empty hash");
  double lat_lo = -90.0, lat_hi = 90.0;
  double lon_lo = -180.0, lon_hi = 180.0;
  bool even_bit = true;
  for (char ch : hash) {
    const auto uch = static_cast<unsigned char>(ch);
    const int value = uch < 128 ? kReverse[uch] : -1;
    if (value < 0) {
      throw std::invalid_argument("geohash_decode: invalid character in hash");
    }
    for (int bit = 4; bit >= 0; --bit) {
      const int b = (value >> bit) & 1;
      if (even_bit) {
        const double mid = (lon_lo + lon_hi) / 2.0;
        (b != 0 ? lon_lo : lon_hi) = mid;
      } else {
        const double mid = (lat_lo + lat_hi) / 2.0;
        (b != 0 ? lat_lo : lat_hi) = mid;
      }
      even_bit = !even_bit;
    }
  }
  return {{(lat_lo + lat_hi) / 2.0, (lon_lo + lon_hi) / 2.0},
          (lat_hi - lat_lo) / 2.0,
          (lon_hi - lon_lo) / 2.0};
}

std::string geohash_neighbor(std::string_view hash, int dx, int dy) {
  const GeohashCell cell = geohash_decode(hash);
  double lon = cell.center.lon + 2.0 * cell.lon_err * static_cast<double>(dx);
  double lat = cell.center.lat + 2.0 * cell.lat_err * static_cast<double>(dy);
  // Wrap longitude across the dateline; clamp latitude into the poles'
  // border cells.
  while (lon >= 180.0) lon -= 360.0;
  while (lon < -180.0) lon += 360.0;
  lat = std::clamp(lat, -90.0 + cell.lat_err, 90.0 - cell.lat_err);
  return geohash_encode({lat, lon}, static_cast<int>(hash.size()));
}

std::vector<std::string> geohash_neighbors(std::string_view hash) {
  std::vector<std::string> out;
  out.reserve(8);
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      if (dx == 0 && dy == 0) continue;
      out.push_back(geohash_neighbor(hash, dx, dy));
    }
  }
  return out;
}

bool geohash_valid(std::string_view hash) {
  if (hash.empty()) return false;
  for (char ch : hash) {
    const auto uch = static_cast<unsigned char>(ch);
    if (uch >= 128 || kReverse[uch] < 0) return false;
  }
  return true;
}

}  // namespace esharing::geo
