#pragma once

/// \file geohash.h
/// Base-32 geohash encoding/decoding. The Mobike dataset stores start/end
/// locations as geohashes; the paper "re-interpret[s] them into the
/// corresponding latitudes and longitudes". Our synthetic dataset keeps the
/// same schema, so the pipeline exercises a real geohash codec.

#include <string>
#include <string_view>
#include <vector>

#include "geo/latlon.h"

namespace esharing::geo {

/// A decoded geohash: the cell center plus half-extents of the cell.
struct GeohashCell {
  LatLon center;
  double lat_err;  ///< half the cell height, degrees
  double lon_err;  ///< half the cell width, degrees
};

/// Encode a coordinate as a geohash of `precision` characters (1..22).
/// Mobike uses 7-character geohashes (cells of ~153 m latitude by
/// ~153 m * cos(lat) longitude), which is the default here.
/// \throws std::invalid_argument for out-of-range coordinates or precision.
[[nodiscard]] std::string geohash_encode(LatLon c, int precision = 7);

/// Decode a geohash string to its cell.
/// \throws std::invalid_argument on empty input or invalid characters.
[[nodiscard]] GeohashCell geohash_decode(std::string_view hash);

/// True if every character of `hash` is a valid geohash base-32 digit and
/// the string is non-empty.
[[nodiscard]] bool geohash_valid(std::string_view hash);

/// The geohash of the cell `dx` columns east and `dy` rows north of
/// `hash`'s cell, at the same precision. Longitude wraps at the dateline;
/// latitude clamps at the poles.
/// \throws std::invalid_argument on invalid hashes.
[[nodiscard]] std::string geohash_neighbor(std::string_view hash, int dx,
                                           int dy);

/// The 8 surrounding cells in row-major order (SW, S, SE, W, E, NW, N, NE).
[[nodiscard]] std::vector<std::string> geohash_neighbors(std::string_view hash);

}  // namespace esharing::geo
