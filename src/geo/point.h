#pragma once

/// \file point.h
/// Planar geometry primitives used throughout E-Sharing. All tier-one
/// optimization (parking location placement) operates in a local Euclidean
/// frame measured in meters, matching the paper's convention of unifying
/// every cost into walking distance.

#include <cmath>
#include <compare>
#include <iosfwd>
#include <vector>

namespace esharing::geo {

/// A point (or displacement) in a local planar frame, in meters.
struct Point {
  double x{0.0};
  double y{0.0};

  friend constexpr Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Point operator*(Point a, double s) { return {a.x * s, a.y * s}; }
  friend constexpr Point operator*(double s, Point a) { return a * s; }
  friend constexpr Point operator/(Point a, double s) { return {a.x / s, a.y / s}; }
  friend constexpr bool operator==(Point a, Point b) { return a.x == b.x && a.y == b.y; }

  /// Squared Euclidean norm. Cheaper than norm(); prefer for comparisons.
  [[nodiscard]] constexpr double norm2() const { return x * x + y * y; }
  [[nodiscard]] double norm() const { return std::hypot(x, y); }
};

/// Euclidean distance in meters — the paper's walking-distance metric
/// (Definition 1 measures user dissatisfaction in Euclidean distance).
[[nodiscard]] inline double distance(Point a, Point b) { return (a - b).norm(); }

/// Squared Euclidean distance; use when only ordering matters.
[[nodiscard]] constexpr double distance2(Point a, Point b) { return (a - b).norm2(); }

/// Axis-aligned bounding box; `min` inclusive, `max` exclusive for grid
/// indexing purposes.
struct BoundingBox {
  Point min;
  Point max;

  [[nodiscard]] constexpr double width() const { return max.x - min.x; }
  [[nodiscard]] constexpr double height() const { return max.y - min.y; }
  [[nodiscard]] constexpr bool contains(Point p) const {
    return p.x >= min.x && p.x < max.x && p.y >= min.y && p.y < max.y;
  }
  [[nodiscard]] constexpr Point center() const {
    return {(min.x + max.x) / 2.0, (min.y + max.y) / 2.0};
  }
  /// Smallest box containing both this box and `p`.
  [[nodiscard]] BoundingBox expanded_to(Point p) const;
  /// Box grown by `margin` meters on every side.
  [[nodiscard]] BoundingBox inflated(double margin) const;
};

/// Bounding box of a non-empty point set.
/// \throws std::invalid_argument if `pts` is empty.
[[nodiscard]] BoundingBox bounding_box(const std::vector<Point>& pts);

/// Arithmetic mean of a non-empty point set.
/// \throws std::invalid_argument if `pts` is empty.
[[nodiscard]] Point centroid(const std::vector<Point>& pts);

/// Index of the element of `pts` closest to `p`.
/// \throws std::invalid_argument if `pts` is empty.
[[nodiscard]] std::size_t nearest_index(const std::vector<Point>& pts, Point p);

std::ostream& operator<<(std::ostream& os, Point p);

}  // namespace esharing::geo
