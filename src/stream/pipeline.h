#pragma once

/// \file pipeline.h
/// The unified front door of `esharing::stream`: one validated config, one
/// facade object, instead of hand-wiring EventBus + OnlinePlacerDriver +
/// IncentiveDriver + checkpoint plumbing at every call site.
///
/// A Pipeline owns the sharded bus and (in serving mode) the two tier
/// drivers. Its pump cycle is the parallel-ingestion engine of the stream
/// layer:
///
///   1. Lane stage — every shard is drained on the exec pool, up to
///      `lanes` shards concurrently (`lanes = 0` uses the pool width).
///      Lanes are exec-pool chunks, not dedicated threads: the pool's
///      chunk shapes depend only on (shard_count, grain), never on timing.
///   2. Merge stage — per-shard FIFO batches are merged by the bus-wide
///      seq stamp back into exact publish order. Seq gaps (events lost to
///      drop/reject policies or still in flight from concurrent
///      publishers) are counted as merge stalls, never waited on.
///   3. Consume stage — the merged batch goes to
///      OnlinePlacerDriver::consume_batch, which fans the shard-local
///      window/regime work back out across the same lanes and then runs
///      tier-one decisions sequentially in seq order.
///
/// Determinism: stages 1–3 are bit-identical to a single-shard,
/// single-threaded replay at every (shard count, lane count, thread count)
/// combination — the merge restores publish order, and the only parallel
/// work is shard-local (see drivers.h) or chunk-deterministic (see
/// exec/thread_pool.h). DESIGN.md "Parallel ingestion" carries the full
/// argument.
///
/// Two modes:
///   * serving   — constructed with a core::ESharing system and a KS
///     reference sample; pump() feeds the placer and the facade exposes
///     both drivers plus checkpoint save/restore.
///   * transport — constructed from the config alone; pump_into() hands
///     merged events to a caller-supplied consumer (Simulation uses this
///     to keep its own process_trip path).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "stream/checkpoint.h"
#include "stream/drivers.h"
#include "stream/event_bus.h"
#include "stream/replay.h"

namespace esharing::stream {

/// Everything a streaming deployment needs, validated as one object
/// (the ESharingConfig::validate() convention).
struct PipelineConfig {
  EventBusConfig bus;
  PlacerDriverConfig placer;
  IncentiveDriverConfig incentive;
  /// Lane width of the parallel shard stages: 0 = exec pool width,
  /// 1 = sequential (the single-threaded reference execution), n = up to
  /// n concurrent lanes. Any value is bit-identical to any other.
  std::size_t lanes{0};
  /// replay() cadence: max publishes between pumps. 0 selects the bus
  /// queue capacity; values above the capacity are clamped to it so a
  /// kBlock bus can never deadlock a single-threaded replay.
  std::size_t pump_every{0};

  /// Validate every nested config plus the facade knobs.
  /// \throws std::invalid_argument on the first violated constraint.
  void validate() const;
};

/// Counters snapshot of the pump cycle (authoritative copies land in the
/// obs registry under `stream.pipeline.*` when enabled).
struct PipelineStats {
  BusStats bus;
  std::uint64_t pump_rounds{0};    ///< drain/merge rounds executed
  std::uint64_t lane_batches{0};   ///< non-empty per-shard drain batches
  std::uint64_t lane_events{0};    ///< events drained by the lane stage
  std::uint64_t merged_events{0};  ///< events delivered in seq order
  std::uint64_t merge_stalls{0};   ///< seq gaps seen by the merge stage
  double lane_occupancy{0.0};  ///< busy shards / shards, last non-empty round
};

class Pipeline {
 public:
  /// Serving mode: the facade owns both tier drivers against `system`.
  /// \param historical_sample KS reference H(x, y), partitioned per shard
  ///        by the bus router (see OnlinePlacerDriver).
  /// \throws std::invalid_argument on invalid config,
  ///         std::logic_error if the system is not online.
  Pipeline(core::ESharing& system, std::vector<geo::Point> historical_sample,
           PipelineConfig config);

  /// Transport mode: bus + lane/merge stages only; serving accessors,
  /// replay() and checkpoints throw std::logic_error. The placer and
  /// incentive sub-configs are still validated (one config, one contract).
  explicit Pipeline(PipelineConfig config);

  [[nodiscard]] const PipelineConfig& config() const { return config_; }
  [[nodiscard]] EventBus& bus() { return bus_; }
  [[nodiscard]] const EventBus& bus() const { return bus_; }
  [[nodiscard]] bool serving() const { return placer_.has_value(); }

  /// \throws std::logic_error in transport mode.
  [[nodiscard]] OnlinePlacerDriver& placer_driver();
  [[nodiscard]] const OnlinePlacerDriver& placer_driver() const;
  [[nodiscard]] IncentiveDriver& incentive_driver();
  [[nodiscard]] const IncentiveDriver& incentive_driver() const;

  /// Publish into the bus (see EventBus::publish/publish_batch).
  bool publish(Event e) { return bus_.publish(e); }
  std::size_t publish_batch(std::span<const Event> events) {
    return bus_.publish_batch(events);
  }

  using Consumer = std::function<void(const Event&)>;

  /// Serving pump: repeat the lane/merge/consume cycle until a round
  /// drains nothing. Trip-end decisions are appended to `decisions_out`
  /// when non-null. Returns the number of events consumed.
  /// \throws std::logic_error in transport mode.
  std::size_t pump(std::vector<solver::OnlineDecision>* decisions_out = nullptr);

  /// Transport pump: same lane/merge cycle, but each merged event goes to
  /// `consumer` (called sequentially, in seq order). Also usable in
  /// serving mode for callers that bypass the drivers deliberately.
  std::size_t pump_into(const Consumer& consumer);

  using DecisionCallback =
      std::function<void(const Event&, const solver::OnlineDecision&)>;

  /// Serving pump that hands back (event, decision) pairs: identical to
  /// pump() — same drain/merge/consume_batch calls, same decision trace —
  /// but after each round the trip-end events of the merged batch are
  /// zipped with the decisions they produced (consume_batch appends exactly
  /// one decision per trip-end, in seq order) and `on_decision` is invoked
  /// for each pair sequentially. This is the serving daemon's decide path:
  /// the event carries the caller's `ref` token, so responses can be routed
  /// back to the requesting connection. Returns the events consumed.
  /// \throws std::logic_error in transport mode.
  std::size_t pump_decisions(const DecisionCallback& on_decision);

  /// Publish `events` in order (batched at the pump_every cadence) and
  /// pump between batches; a final pump flushes the tail. Semantically
  /// replay_log() over the facade's own components — same decision trace.
  /// \throws std::logic_error in transport mode.
  ReplayResult replay(const std::vector<Event>& events);

  [[nodiscard]] PipelineStats stats() const;

  /// Checkpoint passthrough (serving mode; see checkpoint.h for the
  /// format and the queues-drained contract).
  /// \throws std::logic_error in transport mode.
  void save_checkpoint(std::ostream& os) const;
  CheckpointInfo restore_checkpoint(std::istream& is);
  void save_checkpoint_file(const std::string& path) const;
  CheckpointInfo restore_checkpoint_file(const std::string& path);

 private:
  /// One lane+merge round: drain every shard (parallel lanes), merge by
  /// seq into merged_. Returns the number of events merged.
  std::size_t drain_round();
  void require_serving(const char* what) const;

  PipelineConfig config_;
  EventBus bus_;
  core::ESharing* system_{nullptr};
  std::optional<OnlinePlacerDriver> placer_;
  std::optional<IncentiveDriver> incentive_;

  /// Pump-cycle scratch; the pump is single-consumer by contract, so
  /// these are not locked (lanes write disjoint per-shard buffers).
  std::vector<std::vector<Event>> lane_buffers_;
  std::vector<Event> merged_;
  std::uint64_t next_expected_seq_{0};

  std::uint64_t pump_rounds_{0};
  std::uint64_t lane_batches_{0};
  std::uint64_t lane_events_{0};
  std::uint64_t merged_events_{0};
  std::uint64_t merge_stalls_{0};
  double lane_occupancy_{0.0};
};

}  // namespace esharing::stream
