#pragma once

/// \file replay.h
/// Deterministic replay: push a pre-built event log through a bus/driver
/// pair in publish order, draining often enough that a bounded kBlock ring
/// can never deadlock a single-threaded caller. Because every event carries
/// a bus-assigned seq and the driver consumes in merged seq order, the
/// decision trace of a replay depends only on the log — not on the shard
/// count, the queue capacity, or the pump cadence. That is the
/// "single-shard replay mode" contract: replaying any log through a
/// one-shard bus is the reference execution that multi-shard runs are
/// regression-tested against (tests/stream_pipeline_test.cpp).

#include <cstddef>
#include <vector>

#include "solver/meyerson.h"
#include "stream/drivers.h"
#include "stream/event_bus.h"

namespace esharing::stream {

/// Outcome of a replay: the tier-one decision trace, one entry per
/// trip-end event, in seq order.
struct ReplayResult {
  std::size_t published{0};
  std::size_t consumed{0};
  std::size_t rejected{0};  ///< kReject publishes that were shed
  std::vector<solver::OnlineDecision> decisions;
};

/// Publish `events` in order into `bus` and pump `driver` every
/// `pump_every` publishes (0 selects the bus queue capacity). The
/// effective cadence is clamped to the queue capacity, so a kBlock bus is
/// always drained before any shard can fill even if every event routes to
/// one shard. A final pump flushes the tail.
ReplayResult replay_log(EventBus& bus, OnlinePlacerDriver& driver,
                        const std::vector<Event>& events,
                        std::size_t pump_every = 0);

}  // namespace esharing::stream
