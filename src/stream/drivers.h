#pragma once

/// \file drivers.h
/// Incremental consumers that keep the two tiers served from the event
/// stream:
///
///   * OnlinePlacerDriver — feeds every drained trip-end request to the
///     DeviationPenaltyPlacer (Algorithm 2) exactly as the batch replay
///     would, and runs the periodic 2-D KS regime check on the per-shard
///     sliding windows of StreamState instead of re-scanning full history.
///     Sharding makes the check cheap twice over: each shard's window holds
///     only its cells' destinations (the O(n^2) Fasano–Franceschini
///     statistic shrinks quadratically with the shard count), and the
///     reference sample is partitioned once at construction with the same
///     cell router, so shard-local current-vs-historical comparisons are
///     statistically like-for-like (the stratified analogue of Table IV's
///     per-region blocks).
///
///   * IncentiveDriver — tier two off the watchlist: builds incentive
///     sessions (Algorithm 3) from the merged low-battery watchlist and
///     routes pickup interactions of drained trip events into the session,
///     paying Eq. 13 offers within the Eq. 12 budget.
///
/// Both drivers are deterministic: their outputs depend only on the seq
/// order of consumed events, never on shard count or drain timing.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/esharing.h"
#include "core/incentive.h"
#include "geo/spatial_index.h"
#include "ml/batch.h"
#include "stream/event.h"
#include "stream/event_bus.h"
#include "stream/stream_state.h"

namespace esharing::stream {

struct PlacerDriverConfig {
  StreamStateConfig state;
  /// Run the shard-local KS regime check every this many trip-end events
  /// ingested by a shard (0 disables the stream-side check; the placer's
  /// internal Algorithm 2 switching is never affected either way).
  std::size_t regime_check_period{512};
  /// Skip the check until the shard window has this many points.
  std::size_t regime_min_samples{16};
  /// Re-anchor the offline landmarks every this many trip-end events
  /// consumed across all shards (0 disables). Each re-anchor takes the
  /// merged demand snapshot (shard-count invariant) and drives
  /// ESharing::reanchor — a warm re-solve through the incremental
  /// re-optimization engine. Because events are consumed in seq order and
  /// the snapshot is taken at the global max clock, re-anchor points and
  /// outputs are identical at every shard count.
  std::size_t reanchor_period{0};
  /// Skip a scheduled re-anchor while the merged snapshot has fewer
  /// demand cells than this (too few cells make a degenerate instance).
  std::size_t reanchor_min_cells{2};
  /// Forwarded to stats::ks2d_test: samples with n+m <= limit use the
  /// exact O((n+m)^3) Peacock statistic. The stream default is 0 — never
  /// exact — because sharding shrinks windows: at 8 shards a window that
  /// sat comfortably above the batch-path default (400) falls below it and
  /// every check pays the cubic path (the "8-shard cliff" documented in
  /// EXPERIMENTS.md "Stream shard scaling").
  std::size_t ks_peacock_limit{0};
  /// Per-side stratified sample budget for the regime check (0 = off).
  /// When a window or reference slice exceeds the budget, the check runs
  /// on a deterministic midpoint-stride subsample of exactly `budget`
  /// points (see ks_stratified_sample), bounding the quadratic
  /// Fasano–Franceschini cost per check no matter how large windows grow.
  std::size_t ks_sample_budget{0};
  /// Hours of per-cell hourly arrival history the driver accumulates for
  /// batch forecast refreshes (0 = off, the default). When enabled, each
  /// re-anchor fits the batched runtime (ml/batch.h) over every snapshot
  /// cell's hourly series and anchors on the predicted next-hour demand
  /// instead of the raw window counts — falling back to raw counts until
  /// enough completed hours have accumulated. Accumulation happens in the
  /// sequential decision stage, so it is shard-count and lane invariant.
  std::size_t forecast_history_hours{0};
  /// Batched forecaster settings used when forecast_history_hours > 0.
  ml::batch::BatchRnnConfig forecast_rnn;

  /// \throws std::invalid_argument on the first violated constraint.
  void validate() const;
};

/// Deterministic stratified subsample behind `ks_sample_budget`: exactly
/// min(points.size(), budget) points, stratum j of k taking the midpoint
/// index floor((2j+1)*n / (2k)). Stream windows are in arrival order, so
/// the strata are contiguous time slices and every phase of the window
/// stays represented. A pure function of (points, budget) — identical
/// across runs, shard counts, and thread widths. budget == 0 (off) or
/// n <= budget returns the input unchanged.
[[nodiscard]] std::vector<geo::Point> ks_stratified_sample(
    const std::vector<geo::Point>& points, std::size_t budget);

/// Regime signal of one shard: the stream-window KS similarity against the
/// shard's slice of the historical sample.
struct ShardRegime {
  double similarity{100.0};  ///< paper similarity 100*(1-D) %
  std::uint64_t checks{0};
  std::uint64_t trip_ends{0};
};

class OnlinePlacerDriver {
 public:
  /// \param system must be online (start_online called); decisions mutate
  ///        its placer exactly as direct handle_request calls would.
  /// \param historical_sample the KS reference H(x, y); partitioned across
  ///        shards with `bus`'s router so shard-local tests compare
  ///        like-for-like regions.
  /// \throws std::invalid_argument on invalid config,
  ///         std::logic_error if the system is not online.
  OnlinePlacerDriver(core::ESharing& system, const EventBus& bus,
                     std::vector<geo::Point> historical_sample,
                     PlacerDriverConfig config);

  /// Consume one drained event (events must arrive in ascending seq order;
  /// use EventBus::drain_all_ordered or a per-shard merge). Trip ends drive
  /// the placer; battery telemetry updates the shard watchlist.
  /// \returns the placer decision for trip-end events.
  std::optional<solver::OnlineDecision> consume(const Event& e);

  /// Consume a merged, seq-ordered batch. The shard-local stage (window
  /// ingestion, watchlist, per-shard KS regime checks) fans out across the
  /// exec pool with up to `lanes` lanes (0 = pool width, 1 = inline); the
  /// tier-one decision stage then runs sequentially in seq order. The
  /// split is legal because the shard stage touches only that shard's
  /// state and depends only on that shard's FIFO subsequence — so the
  /// result is bit-identical to consuming the same events one at a time
  /// via consume(), at every lane count and shard count. When re-anchoring
  /// is enabled the batch is cut at each trigger trip-end, so the merged
  /// snapshot a re-anchor reads never includes events past its trigger.
  /// Trip-end decisions are appended to `decisions_out` when non-null.
  /// \returns the number of events consumed (always events.size()).
  std::size_t consume_batch(
      std::span<const Event> events, std::size_t lanes = 1,
      std::vector<solver::OnlineDecision>* decisions_out = nullptr);

  /// Drain every pending event from the bus in publish order and consume
  /// it. Returns the number of events processed.
  std::size_t pump(EventBus& bus);

  [[nodiscard]] const core::ESharing& system() const { return *system_; }
  [[nodiscard]] const StreamState& shard_state(std::size_t shard) const;
  [[nodiscard]] const ShardRegime& shard_regime(std::size_t shard) const;
  [[nodiscard]] std::size_t shard_count() const { return states_.size(); }
  [[nodiscard]] std::uint64_t events_consumed() const { return consumed_; }
  [[nodiscard]] std::uint64_t last_seq() const { return last_seq_; }
  /// Landmark re-anchors executed so far (reanchor_period cadence).
  [[nodiscard]] std::uint64_t reanchors() const { return reanchors_; }
  /// Re-anchors that used batched demand forecasts (vs raw window counts).
  [[nodiscard]] std::uint64_t forecast_refreshes() const {
    return forecast_refreshes_;
  }
  [[nodiscard]] bool any_consumed() const { return consumed_ > 0; }
  /// Merged deterministic view across all shards.
  [[nodiscard]] StateSnapshot merged_snapshot() const;
  /// Merged low-battery watchlist (sorted by bike id).
  [[nodiscard]] std::vector<WatchEntry> watchlist() const;

  // Checkpoint hooks used by the pipeline container (checkpoint.h).
  void save(std::ostream& os) const;
  void restore_from(std::istream& is);

 private:
  /// Shard-local half of consume(): fold one shard's FIFO subsequence into
  /// its StreamState and regime counters, firing cadenced KS checks. Safe
  /// to run concurrently for distinct shards — it reads and writes only
  /// states_[shard] / regimes_[shard] / shard_history_[shard].
  void ingest_shard(std::size_t shard, const Event* events, std::size_t n);
  /// Global half: seq-order counters, the tier-one decision, and the
  /// re-anchor cadence. Must run sequentially in merged seq order, after
  /// the event's shard ingest.
  std::optional<solver::OnlineDecision> decide(const Event& e);
  void run_regime_check(std::size_t shard);
  void run_reanchor();

  core::ESharing* system_;
  const EventBus* bus_;  ///< router reference for shard-of mapping
  PlacerDriverConfig config_;
  std::vector<StreamState> states_;
  std::vector<ShardRegime> regimes_;
  std::vector<std::vector<geo::Point>> shard_history_;
  std::uint64_t consumed_{0};
  std::uint64_t last_seq_{0};
  std::uint64_t trip_ends_total_{0};
  std::uint64_t reanchors_{0};
  std::uint64_t forecast_refreshes_{0};
  /// Per-cell hourly trip-end weights for the batch forecast refresh,
  /// keyed by (cx, cy) at the stream cell size, then by hour bucket.
  /// Written only in decide() (sequential seq order), pruned to the
  /// trailing forecast_history_hours.
  std::map<std::pair<std::int64_t, std::int64_t>, std::map<std::int64_t, double>>
      forecast_hours_;
};

struct IncentiveDriverConfig {
  core::IncentiveConfig incentive;
  /// A watchlist-built session maps each watchlisted bike to the nearest
  /// parking within this radius; farther bikes are left to the operator.
  double assign_radius_m{1e9};

  void validate() const;
};

class IncentiveDriver {
 public:
  /// \throws std::invalid_argument on invalid config.
  explicit IncentiveDriver(IncentiveDriverConfig config);

  /// Open a session over `parkings` with its low-bike piles built from the
  /// merged watchlist (Algorithm 3's aggregation set, fed by telemetry
  /// instead of a fleet scan). Replaces any running session.
  /// \throws std::invalid_argument on empty parkings.
  void open_session(const std::vector<geo::Point>& parkings,
                    const std::vector<WatchEntry>& watchlist);

  /// Route one drained trip event's pickup into the running session: the
  /// pickup station is the nearest session station to `e.origin`, the
  /// destination parking is `assigned` (tier one's decision for this
  /// rider). No-op without a session. Thresholds come from the event
  /// (Eq. 13), battery feasibility from `can_ride`.
  core::Offer handle_trip(const Event& e, geo::Point assigned,
                          const core::IncentiveMechanism::CanRideFn& can_ride);

  [[nodiscard]] bool session_open() const { return session_.has_value(); }
  [[nodiscard]] const core::IncentiveMechanism& session() const;
  [[nodiscard]] core::IncentiveMechanism& session();
  [[nodiscard]] double total_incentives_paid() const { return paid_total_; }
  [[nodiscard]] std::uint64_t offers_made() const { return offers_total_; }
  [[nodiscard]] std::uint64_t relocations() const { return relocations_total_; }

  // Checkpoint hooks (see checkpoint.h).
  void save(std::ostream& os) const;
  void restore_from(std::istream& is);

 private:
  void fold_session_totals();

  IncentiveDriverConfig config_;
  std::optional<core::IncentiveMechanism> session_;
  geo::SpatialIndex session_index_;
  /// Totals across closed sessions (the open session adds its own live
  /// counters on top; see the observers above).
  double paid_closed_{0.0};
  std::uint64_t offers_closed_{0};
  std::uint64_t relocations_closed_{0};
  double paid_total_{0.0};
  std::uint64_t offers_total_{0};
  std::uint64_t relocations_total_{0};
};

}  // namespace esharing::stream
