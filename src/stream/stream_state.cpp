#include "stream/stream_state.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "data/sorted_view.h"
#include "data/wire.h"
#include "obs/registry.h"

namespace esharing::stream {

namespace {

struct StateObsMetrics {
  obs::Counter& ingested;
  obs::Counter& evicted;
  obs::Counter& watch_added;
  obs::Counter& watch_cleared;

  static StateObsMetrics& get() {
    static StateObsMetrics m{
        obs::Registry::global().counter("stream.state.events_ingested"),
        obs::Registry::global().counter("stream.state.window_evictions"),
        obs::Registry::global().counter("stream.state.watchlist_added"),
        obs::Registry::global().counter("stream.state.watchlist_cleared"),
    };
    return m;
  }
};

}  // namespace

void StreamStateConfig::validate() const {
  const auto fail = [](const std::string& field, double got,
                       const std::string& why) {
    throw std::invalid_argument("StreamStateConfig: " + field + " = " +
                                std::to_string(got) + " is invalid: " + why);
  };
  if (window_length <= 0) {
    fail("window_length", static_cast<double>(window_length),
         "the sliding demand window is a duration in seconds and must be "
         "positive");
  }
  if (!(rate_halflife_s > 0.0)) {
    fail("rate_halflife_s", rate_halflife_s,
         "the arrival-rate decay half-life must be positive");
  }
  if (!(low_soc_threshold > 0.0 && low_soc_threshold <= 1.0)) {
    fail("low_soc_threshold", low_soc_threshold,
         "the watchlist threshold is a state-of-charge fraction in (0, 1]");
  }
  if (!(cell_m > 0.0)) {
    fail("cell_m", cell_m,
         "the demand-count cell edge is a length in meters and must be "
         "positive");
  }
}

StreamState::StreamState(StreamStateConfig config) : config_(config) {
  config_.validate();
}

StreamState::CellKey StreamState::cell_of(geo::Point p) const {
  return {static_cast<std::int64_t>(std::floor(p.x / config_.cell_m)),
          static_cast<std::int64_t>(std::floor(p.y / config_.cell_m))};
}

void StreamState::advance_clock(data::Seconds t) {
  if (!saw_event_ || t > now_) {
    now_ = t;
    saw_event_ = true;
  }
}

void StreamState::evict(data::Seconds now) {
  while (!window_.empty() && window_.front().time <= now - config_.window_length) {
    auto it = cells_.find(window_.front().cell);
    if (it != cells_.end() && it->second.in_window > 0) {
      --it->second.in_window;
    }
    window_.pop_front();
    if (obs::enabled()) StateObsMetrics::get().evicted.add();
  }
}

void StreamState::ingest(const Event& e) {
  advance_clock(e.time);
  ++ingested_;
  if (obs::enabled()) StateObsMetrics::get().ingested.add();

  switch (e.kind) {
    case EventKind::kTripEnd: {
      const CellKey key = cell_of(e.where);
      CellState& cell = cells_[key];
      // Decay the rate estimate to this event's time, then count it.
      if (cell.rate > 0.0 && e.time > cell.rate_updated) {
        const double dt = static_cast<double>(e.time - cell.rate_updated);
        cell.rate *= std::exp2(-dt / config_.rate_halflife_s);
      }
      cell.rate += 1.0 / config_.rate_halflife_s;
      cell.rate_updated = std::max(cell.rate_updated, e.time);
      ++cell.in_window;
      window_.push_back({e.time, e.seq, e.where, key});
      break;
    }
    case EventKind::kBatteryLevel: {
      if (e.soc < config_.low_soc_threshold) {
        const bool fresh = watch_.find(e.bike_id) == watch_.end();
        watch_[e.bike_id] = {e.bike_id, e.where, e.soc, e.time};
        if (fresh && obs::enabled()) StateObsMetrics::get().watch_added.add();
      } else if (watch_.erase(e.bike_id) > 0 && obs::enabled()) {
        StateObsMetrics::get().watch_cleared.add();
      }
      break;
    }
    case EventKind::kTripStart:
      break;  // clock advance only
  }
  evict(now_);
}

std::vector<geo::Point> StreamState::window_points() const {
  std::vector<geo::Point> pts;
  pts.reserve(window_.size());
  for (const auto& w : window_) pts.push_back(w.where);
  return pts;
}

std::vector<geo::Point> StateSnapshot::window_points() const {
  std::vector<geo::Point> pts;
  pts.reserve(window.size());
  for (const auto& w : window) pts.push_back(w.where);
  return pts;
}

double StreamState::arrival_rate(geo::Point p, data::Seconds at) const {
  const auto it = cells_.find(cell_of(p));
  if (it == cells_.end()) return 0.0;
  const CellState& cell = it->second;
  if (at <= cell.rate_updated) return cell.rate;
  const double dt = static_cast<double>(at - cell.rate_updated);
  return cell.rate * std::exp2(-dt / config_.rate_halflife_s);
}

StateSnapshot StreamState::snapshot() const { return snapshot(now_); }

StateSnapshot StreamState::snapshot(data::Seconds as_of) const {
  const data::Seconds now = std::max(now_, as_of);
  StateSnapshot snap;
  snap.now = now;
  // Recount window survivors as of `now` rather than trusting the raw
  // in_window counters: eviction is lazy (runs only on ingest), so a quiet
  // shard's counters can include entries a global clock already aged out.
  std::unordered_map<CellKey, std::uint64_t, CellKeyHash> live;
  snap.window.reserve(window_.size());
  for (const auto& w : window_) {
    if (w.time <= now - config_.window_length) continue;
    ++live[w.cell];
    snap.window.push_back({w.seq, w.where});
  }
  snap.cells.reserve(cells_.size());
  for (const auto& [key, cell] : data::sorted_items(cells_, cell_key_less)) {
    const auto it = live.find(key);
    snap.cells.push_back({key.cx, key.cy,
                          it == live.end() ? 0 : it->second,
                          arrival_rate({static_cast<double>(key.cx) * config_.cell_m,
                                        static_cast<double>(key.cy) * config_.cell_m},
                                       now)});
  }
  snap.watchlist.reserve(watch_.size());
  for (const auto& [bike, entry] : data::sorted_items(watch_)) {
    snap.watchlist.push_back(entry);
  }
  return snap;
}

StateSnapshot StreamState::merge(const std::vector<StateSnapshot>& shards) {
  StateSnapshot merged;
  for (const auto& s : shards) {
    merged.now = std::max(merged.now, s.now);
    merged.cells.insert(merged.cells.end(), s.cells.begin(), s.cells.end());
    merged.watchlist.insert(merged.watchlist.end(), s.watchlist.begin(),
                            s.watchlist.end());
  }
  std::sort(merged.cells.begin(), merged.cells.end(),
            [](const StateSnapshot::CellCount& a,
               const StateSnapshot::CellCount& b) {
              return a.cx != b.cx ? a.cx < b.cx : a.cy < b.cy;
            });
  std::sort(merged.watchlist.begin(), merged.watchlist.end(),
            [](const WatchEntry& a, const WatchEntry& b) {
              return a.bike_id < b.bike_id;
            });
  // Window points interleave across shards; re-merging by publish seq makes
  // the merged view identical for every shard count.
  for (const auto& s : shards) {
    merged.window.insert(merged.window.end(), s.window.begin(),
                         s.window.end());
  }
  std::sort(merged.window.begin(), merged.window.end(),
            [](const StateSnapshot::WindowPoint& a,
               const StateSnapshot::WindowPoint& b) { return a.seq < b.seq; });
  return merged;
}

// --- checkpoint serialization ----------------------------------------------

namespace wire = data::wire;

void StreamState::save(std::ostream& os) const {
  wire::write_i64(os, now_);
  wire::write_u8(os, saw_event_ ? 1 : 0);
  wire::write_u64(os, ingested_);

  wire::write_u64(os, window_.size());
  for (const auto& w : window_) {
    wire::write_i64(os, w.time);
    wire::write_u64(os, w.seq);
    wire::write_f64(os, w.where.x);
    wire::write_f64(os, w.where.y);
  }

  // Cells are persisted sorted so identical states write identical bytes.
  const auto cells = data::sorted_items(cells_, cell_key_less);
  wire::write_u64(os, cells.size());
  for (const auto& [key, cell] : cells) {
    wire::write_i64(os, key.cx);
    wire::write_i64(os, key.cy);
    wire::write_u64(os, cell.in_window);
    wire::write_f64(os, cell.rate);
    wire::write_i64(os, cell.rate_updated);
  }

  const auto watch = data::sorted_items(watch_);
  wire::write_u64(os, watch.size());
  for (const auto& [bike, w] : watch) {
    wire::write_i64(os, w.bike_id);
    wire::write_f64(os, w.where.x);
    wire::write_f64(os, w.where.y);
    wire::write_f64(os, w.soc);
    wire::write_i64(os, w.reported_at);
  }
}

StreamState StreamState::restore(std::istream& is, StreamStateConfig config) {
  constexpr std::uint64_t kSaneMax = 1ULL << 32;
  StreamState st(config);
  st.now_ = wire::read_i64(is);
  st.saw_event_ = wire::read_u8(is) != 0;
  st.ingested_ = wire::read_u64(is);

  const std::uint64_t n_window = wire::read_count(is, kSaneMax);
  for (std::uint64_t i = 0; i < n_window; ++i) {
    WindowEntry w;
    w.time = wire::read_i64(is);
    w.seq = wire::read_u64(is);
    w.where.x = wire::read_f64(is);
    w.where.y = wire::read_f64(is);
    w.cell = st.cell_of(w.where);
    st.window_.push_back(w);
  }

  const std::uint64_t n_cells = wire::read_count(is, kSaneMax);
  for (std::uint64_t i = 0; i < n_cells; ++i) {
    CellKey key;
    key.cx = wire::read_i64(is);
    key.cy = wire::read_i64(is);
    CellState cell;
    cell.in_window = wire::read_u64(is);
    cell.rate = wire::read_f64(is);
    cell.rate_updated = wire::read_i64(is);
    st.cells_.emplace(key, cell);
  }

  const std::uint64_t n_watch = wire::read_count(is, kSaneMax);
  for (std::uint64_t i = 0; i < n_watch; ++i) {
    WatchEntry w;
    w.bike_id = wire::read_i64(is);
    w.where.x = wire::read_f64(is);
    w.where.y = wire::read_f64(is);
    w.soc = wire::read_f64(is);
    w.reported_at = wire::read_i64(is);
    st.watch_.emplace(w.bike_id, w);
  }
  return st;
}

bool StreamState::equals(const StreamState& other) const {
  if (now_ != other.now_ || saw_event_ != other.saw_event_ ||
      ingested_ != other.ingested_ || window_.size() != other.window_.size() ||
      cells_.size() != other.cells_.size() ||
      watch_.size() != other.watch_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < window_.size(); ++i) {
    const auto& a = window_[i];
    const auto& b = other.window_[i];
    if (a.time != b.time || a.seq != b.seq || a.where.x != b.where.x ||
        a.where.y != b.where.y) {
      return false;
    }
  }
  // lint-ok: unordered-iter order-independent membership comparison
  for (const auto& [key, cell] : cells_) {
    const auto it = other.cells_.find(key);
    if (it == other.cells_.end() || it->second.in_window != cell.in_window ||
        it->second.rate != cell.rate ||
        it->second.rate_updated != cell.rate_updated) {
      return false;
    }
  }
  // lint-ok: unordered-iter order-independent membership comparison
  for (const auto& [bike, entry] : watch_) {
    const auto it = other.watch_.find(bike);
    if (it == other.watch_.end() || it->second.soc != entry.soc ||
        it->second.where.x != entry.where.x ||
        it->second.where.y != entry.where.y ||
        it->second.reported_at != entry.reported_at) {
      return false;
    }
  }
  return true;
}

}  // namespace esharing::stream
