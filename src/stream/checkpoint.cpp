#include "stream/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "data/wire.h"

namespace esharing::stream {

namespace {

namespace wire = data::wire;
constexpr std::uint64_t kCheckpointMagic = 0x4553545243435031ULL;  // "ESTRCCP1"
// v2: the re-optimization session state (ESharing::save_reopt) rides along
// after the placer blob — without it a post-restore re-anchor warm-solves
// from the bootstrap instance instead of the instance the original process
// had drifted to, and the two landmark histories diverge.
constexpr std::uint64_t kCheckpointVersion = 2;

}  // namespace

void save_checkpoint(std::ostream& os, const EventBus& bus,
                     const OnlinePlacerDriver& placer_driver,
                     const IncentiveDriver& incentive_driver) {
  if (bus.pending_total() != 0) {
    throw std::logic_error(
        "save_checkpoint: " + std::to_string(bus.pending_total()) +
        " events still queued — drain and consume them first (the "
        "checkpoint format only represents queues-drained state)");
  }
  if (placer_driver.shard_count() != bus.shard_count()) {
    throw std::logic_error(
        "save_checkpoint: driver serves " +
        std::to_string(placer_driver.shard_count()) + " shards but the bus "
        "has " + std::to_string(bus.shard_count()));
  }
  wire::write_u64(os, kCheckpointMagic);
  wire::write_u64(os, kCheckpointVersion);
  wire::write_u64(os, bus.shard_count());
  wire::write_f64(os, bus.config().route_cell_m);
  wire::write_u8(os, static_cast<std::uint8_t>(bus.config().policy));
  wire::write_u64(os, bus.config().queue_capacity);
  wire::write_u64(os, bus.next_seq());
  placer_driver.system().save_placer(os);
  placer_driver.system().save_reopt(os);
  placer_driver.save(os);
  incentive_driver.save(os);
  // ostream insertion fails silently (badbit is sticky but unchecked);
  // surface a short write here rather than handing back a truncated
  // checkpoint that only fails at restore time.
  if (!os) {
    throw std::runtime_error(
        "save_checkpoint: stream write failed mid-checkpoint — the output "
        "is truncated and must be discarded");
  }
}

CheckpointInfo restore_checkpoint(std::istream& is, EventBus& bus,
                                  core::ESharing& system,
                                  OnlinePlacerDriver& placer_driver,
                                  IncentiveDriver& incentive_driver) {
  if (&placer_driver.system() != &system) {
    throw std::logic_error(
        "restore_checkpoint: `system` is not the ESharing instance the "
        "placer driver serves");
  }
  if (wire::read_u64(is) != kCheckpointMagic) {
    throw std::runtime_error(
        "restore_checkpoint: bad magic — not an esharing stream checkpoint");
  }
  CheckpointInfo info;
  info.version = wire::read_u64(is);
  if (info.version != kCheckpointVersion) {
    throw std::runtime_error(
        "restore_checkpoint: unsupported checkpoint version " +
        std::to_string(info.version) + " (this build reads version " +
        std::to_string(kCheckpointVersion) + ")");
  }
  info.shard_count = wire::read_u64(is);
  if (info.shard_count != bus.shard_count()) {
    throw std::runtime_error(
        "restore_checkpoint: checkpoint was taken with " +
        std::to_string(info.shard_count) + " shards, the live bus has " +
        std::to_string(bus.shard_count()) +
        " — restore with a bus of the same shard count");
  }
  const double route_cell_m = wire::read_f64(is);
  if (route_cell_m != bus.config().route_cell_m) {
    throw std::runtime_error(
        "restore_checkpoint: checkpoint routed events on " +
        std::to_string(route_cell_m) + " m cells, the live bus routes on " +
        std::to_string(bus.config().route_cell_m) +
        " m — shard ownership would not line up");
  }
  (void)wire::read_u8(is);   // policy: informative, does not affect state
  (void)wire::read_u64(is);  // queue_capacity: likewise
  bus.resume_seq(wire::read_u64(is));
  system.restore_placer(is);
  system.restore_reopt(is);
  placer_driver.restore_from(is);
  incentive_driver.restore_from(is);
  info.events_consumed = placer_driver.events_consumed();
  info.last_seq = placer_driver.last_seq();
  return info;
}

void save_checkpoint_file(const std::string& path, const EventBus& bus,
                          const OnlinePlacerDriver& placer_driver,
                          const IncentiveDriver& incentive_driver) {
  // Crash-atomic: write a sibling temp file and rename it over the target.
  // A crash mid-save leaves the previous checkpoint intact (rename is
  // atomic on POSIX filesystems); the target is never opened with trunc,
  // so there is no window where the only recovery state is half-written.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) {
      throw std::runtime_error("save_checkpoint_file: cannot open " + tmp);
    }
    try {
      save_checkpoint(os, bus, placer_driver, incentive_driver);
    } catch (...) {
      os.close();
      (void)std::remove(tmp.c_str());
      throw;
    }
    os.flush();
    if (!os) {
      (void)std::remove(tmp.c_str());
      throw std::runtime_error("save_checkpoint_file: write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)std::remove(tmp.c_str());
    throw std::runtime_error("save_checkpoint_file: cannot rename " + tmp +
                             " over " + path);
  }
}

CheckpointInfo restore_checkpoint_file(const std::string& path, EventBus& bus,
                                       core::ESharing& system,
                                       OnlinePlacerDriver& placer_driver,
                                       IncentiveDriver& incentive_driver) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw std::runtime_error("restore_checkpoint_file: cannot open " + path);
  }
  return restore_checkpoint(is, bus, system, placer_driver, incentive_driver);
}

}  // namespace esharing::stream
