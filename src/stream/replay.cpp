#include "stream/replay.h"

#include <algorithm>

namespace esharing::stream {

namespace {

void pump_into(EventBus& bus, OnlinePlacerDriver& driver, ReplayResult& out) {
  std::vector<Event> batch;
  bus.drain_all_ordered(batch);
  for (const Event& e : batch) {
    const auto decision = driver.consume(e);
    if (decision.has_value()) out.decisions.push_back(*decision);
  }
  out.consumed += batch.size();
}

}  // namespace

ReplayResult replay_log(EventBus& bus, OnlinePlacerDriver& driver,
                        const std::vector<Event>& events,
                        std::size_t pump_every) {
  const std::size_t capacity = bus.config().queue_capacity;
  const std::size_t cadence =
      std::min(pump_every == 0 ? capacity : pump_every, capacity);
  ReplayResult result;
  std::size_t since_pump = 0;
  for (const Event& e : events) {
    if (bus.publish(e)) {
      ++result.published;
    } else {
      ++result.rejected;
    }
    if (++since_pump >= cadence) {
      pump_into(bus, driver, result);
      since_pump = 0;
    }
  }
  pump_into(bus, driver, result);
  return result;
}

}  // namespace esharing::stream
