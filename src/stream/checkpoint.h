#pragma once

/// \file checkpoint.h
/// Versioned binary checkpoints of the streaming pipeline.
///
/// A checkpoint captures the *queues-drained* state of the serving path:
/// the online placer (stations, penalty state, KS window, RNG), the
/// per-shard StreamStates (windows, rates, watchlist), the regime-check
/// counters, and the incentive driver (closed totals plus the open session
/// with its frozen offers and piles). The bus itself is deliberately not
/// serialized — the format's contract is that every published event has
/// been drained and consumed first, so the checkpoint is a pure function of
/// the consumed event prefix. Restoring and then feeding the remaining
/// suffix therefore reproduces the uninterrupted run bit for bit (the
/// property tests/stream_checkpoint_test.cpp locks in).
///
/// Layout (little-endian, see data/wire.h):
///   magic "ESTRCKP1" | version | bus fingerprint (shard_count,
///   route_cell_m, policy, queue_capacity) | placer blob | reopt-session
///   blob (warm re-anchor state) | placer-driver blob (regimes + per-shard
///   states) | incentive-driver blob.
/// Restore validates magic, version, shard count and routing cell against
/// the live bus and throws std::runtime_error with an actionable message on
/// any mismatch.

#include <cstdint>
#include <iosfwd>
#include <string>

#include "stream/drivers.h"
#include "stream/event_bus.h"

namespace esharing::stream {

/// Header facts of a restored checkpoint.
struct CheckpointInfo {
  std::uint64_t version{0};
  std::uint64_t shard_count{0};
  std::uint64_t events_consumed{0};
  std::uint64_t last_seq{0};
};

/// Write a checkpoint of the drained pipeline.
/// \throws std::logic_error if the bus still has pending events (drain and
///         consume first — the format only represents consumed state) or if
///         `placer_driver` does not serve `bus`'s shard layout.
void save_checkpoint(std::ostream& os, const EventBus& bus,
                     const OnlinePlacerDriver& placer_driver,
                     const IncentiveDriver& incentive_driver);

/// Restore a checkpoint into live pipeline components. `system` must be the
/// ESharing instance `placer_driver` serves (its placer is replaced via
/// restore_placer), and `bus` must have the same shard count and routing
/// cell as the checkpointed bus; its seq counter is fast-forwarded so
/// subsequent publishes continue the checkpointed stamp sequence.
/// \throws std::runtime_error on corrupt input or fingerprint mismatch,
///         std::logic_error on component wiring errors.
CheckpointInfo restore_checkpoint(std::istream& is, EventBus& bus,
                                  core::ESharing& system,
                                  OnlinePlacerDriver& placer_driver,
                                  IncentiveDriver& incentive_driver);

/// Convenience file wrappers. \throws std::runtime_error when the path
/// cannot be opened, plus everything the stream variants throw.
void save_checkpoint_file(const std::string& path, const EventBus& bus,
                          const OnlinePlacerDriver& placer_driver,
                          const IncentiveDriver& incentive_driver);
CheckpointInfo restore_checkpoint_file(const std::string& path, EventBus& bus,
                                       core::ESharing& system,
                                       OnlinePlacerDriver& placer_driver,
                                       IncentiveDriver& incentive_driver);

}  // namespace esharing::stream
