#pragma once

/// \file event.h
/// The event vocabulary of the `esharing::stream` ingestion pipeline. The
/// paper's online tier (Algorithm 2) and incentive tier (Eq. 12-13) both
/// consume a *live* trip stream; this type is the wire format that stream
/// carries: trip lifecycle events (a pickup at an origin, a drop-off
/// request at a destination) and battery telemetry (the residual-energy
/// reports the paper crawls from the XQBike app). Everything downstream —
/// shard routing, sliding windows, the low-battery watchlist, the placer
/// and incentive drivers — is driven purely by these records.

#include <cstdint>
#include <vector>

#include "data/trip.h"
#include "geo/point.h"

namespace esharing::stream {

enum class EventKind : std::uint8_t {
  kTripStart = 0,   ///< pickup at `where` (tier-two trigger)
  kTripEnd = 1,     ///< drop-off request with destination `where` (tier one)
  kBatteryLevel = 2 ///< telemetry: bike `bike_id` reports `soc` at `where`
};

[[nodiscard]] const char* event_kind_name(EventKind k);

/// One ingested event. `seq` is assigned by the EventBus at publish time
/// and defines the global arrival order; the deterministic replay/merge
/// machinery restores it after sharding, which is what makes a multi-shard
/// run byte-identical to a single-shard one for a single publisher.
struct Event {
  EventKind kind{EventKind::kTripEnd};
  data::Seconds time{0};
  std::uint64_t seq{0};
  geo::Point where{0.0, 0.0};
  /// Pickup origin of a trip-end request. The paper's online loop decides
  /// tier one (where to park, from the destination) and tier two (the
  /// incentive offer at the pickup) for the same rider in one interaction,
  /// so the request event carries both endpoints and is processed
  /// atomically — the property the batch-equivalence tests rely on.
  geo::Point origin{0.0, 0.0};
  std::int64_t bike_id{0};
  double weight{1.0};  ///< arrival weight of a trip-end request
  double soc{1.0};     ///< state of charge carried by battery telemetry
  /// Eq. 13 private thresholds sampled for the rider behind a trip start;
  /// carried on the event so replay does not depend on consumer-side RNG.
  double user_max_walk_m{0.0};
  double user_min_reward{0.0};
  /// Publisher-side cross reference (e.g. index into a replayed trip log).
  std::int64_t ref{0};
};

/// Ascending-seq ordering used by the deterministic shard merge.
struct BySeq {
  bool operator()(const Event& a, const Event& b) const {
    return a.seq < b.seq;
  }
};

}  // namespace esharing::stream
