#pragma once

/// \file event_bus.h
/// Sharded, bounded ingestion queues: the front door of `esharing::stream`.
///
/// Events are routed to a shard by the grid cell of their location (the
/// paper's 100x100 m demand grid is the natural partition key: everything
/// downstream — demand windows, arrival rates, the watchlist — is keyed by
/// cell, so one cell's state always lives in exactly one shard). Each shard
/// owns one bounded MPSC ring: any number of publishers, one consumer
/// draining in batches. A full ring applies the configured backpressure
/// policy:
///
///   * kBlock      — publish waits for the consumer (lossless, the default);
///   * kDropOldest — overwrite the oldest undrained event (freshness over
///                   completeness, for telemetry like battery levels);
///   * kReject     — publish fails fast and returns false (load shedding).
///
/// Every publish is stamped with a bus-wide monotonic sequence number.
/// Per-shard FIFO plus the seq stamp lets a consumer merge any number of
/// shards back into the exact publish order (see replay.h), which is the
/// mechanism behind the multi-shard == single-shard determinism guarantee.
/// Drops/rejections/blocks are observable through `obs` counters
/// (`stream.event_bus.*`).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/sync.h"
#include "core/thread_annotations.h"
#include "geo/grid.h"
#include "stream/event.h"

namespace esharing::stream {

enum class BackpressurePolicy : std::uint8_t {
  kBlock = 0,
  kDropOldest = 1,
  kReject = 2
};

[[nodiscard]] const char* backpressure_policy_name(BackpressurePolicy p);

struct EventBusConfig {
  std::size_t shard_count{1};      ///< >= 1; shards own disjoint cell sets
  std::size_t queue_capacity{4096};///< per-shard ring capacity (events)
  std::size_t max_batch{256};      ///< drain batch cap; <= queue_capacity
  BackpressurePolicy policy{BackpressurePolicy::kBlock};
  double route_cell_m{100.0};      ///< routing cell edge (paper grid: 100 m)

  /// Fail fast with an actionable message (PR 2 validate() convention).
  /// \throws std::invalid_argument on the first violated constraint.
  void validate() const;
};

/// Counters snapshot for tests and status lines (the authoritative values
/// also land in the obs registry when enabled).
struct BusStats {
  std::uint64_t published{0};
  std::uint64_t dropped_oldest{0};
  std::uint64_t rejected{0};
  std::uint64_t blocked_publishes{0};  ///< publishes that had to wait
  std::uint64_t drained{0};
};

class EventBus {
 public:
  /// \throws std::invalid_argument on invalid config.
  explicit EventBus(EventBusConfig config);

  [[nodiscard]] const EventBusConfig& config() const { return config_; }
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  /// Deterministic shard of a location: Fibonacci-mixed hash of its
  /// routing-cell coordinates modulo the shard count. Pure function of
  /// (point, config) — identical across runs and machines.
  [[nodiscard]] std::size_t shard_of(geo::Point p) const;

  /// Publish one event; assigns `e.seq` (bus-wide monotonic) and routes by
  /// `e.where`. Returns false only under kReject on a full ring (the event
  /// is discarded and no seq is consumed from the caller's perspective of
  /// delivered events — rejected publishes still advance the stamp so
  /// accepted order stays consistent across shards). Thin wrapper over
  /// publish_batch on a one-event span.
  bool publish(Event e);

  /// Publish a batch: one seq-range reservation stamps the whole span in
  /// order, events are grouped by destination shard (relative order
  /// preserved), and each touched shard's ring is filled under a single
  /// lock acquisition instead of one per event. For a single publisher the
  /// delivered stream is indistinguishable from the equivalent sequence of
  /// per-event publishes; concurrent batches each own a contiguous seq
  /// range. Backpressure matches publish(): kBlock waits for ring space
  /// per event (releasing the lock while waiting), kDropOldest evicts, and
  /// kReject sheds the remainder of a full shard's sub-batch — under a
  /// held lock no drain can interleave, so per-event publishes would have
  /// rejected those events too. Returns the number of accepted events.
  std::size_t publish_batch(std::span<const Event> events);

  /// Drain up to min(max_batch, pending) events from one shard, appending
  /// to `out` in FIFO order. Returns the number drained. Thread-safe, but
  /// intended for one consumer per shard.
  /// \throws std::out_of_range on a bad shard index.
  std::size_t drain(std::size_t shard, std::vector<Event>& out);

  /// Drain every shard completely and merge by seq into publish order.
  /// Single-consumer convenience for the deterministic pipeline.
  std::size_t drain_all_ordered(std::vector<Event>& out);

  /// The seq the next publish will be stamped with.
  [[nodiscard]] std::uint64_t next_seq() const {
    return next_seq_.load(std::memory_order_relaxed);
  }

  /// Fast-forward the seq counter (to max(current, next)). Used by
  /// checkpoint restore so a fresh bus continues the stamp sequence of the
  /// checkpointed one — window entries carry seqs, so bit-identical resume
  /// needs the counter to resume too. Not thread-safe against concurrent
  /// publishes; call before the pipeline restarts.
  void resume_seq(std::uint64_t next);

  /// Events currently queued in one shard.
  [[nodiscard]] std::size_t pending(std::size_t shard) const;
  /// Events currently queued across all shards.
  [[nodiscard]] std::size_t pending_total() const;

  [[nodiscard]] BusStats stats() const;

 private:
  struct Shard {
    explicit Shard(std::size_t capacity) : ring(capacity) {}

    mutable es::Mutex mu;
    es::CondVar space;  ///< producers wait here under kBlock
    std::vector<Event> ring ES_GUARDED_BY(mu);
    std::size_t head ES_GUARDED_BY(mu){0};  ///< oldest undrained slot
    std::size_t count ES_GUARDED_BY(mu){0};
    std::uint64_t dropped ES_GUARDED_BY(mu){0};
    std::uint64_t rejected ES_GUARDED_BY(mu){0};
    std::uint64_t blocked ES_GUARDED_BY(mu){0};
    std::uint64_t drained ES_GUARDED_BY(mu){0};
  };

  EventBusConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::uint64_t> published_{0};
};

}  // namespace esharing::stream
