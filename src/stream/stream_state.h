#pragma once

/// \file stream_state.h
/// Per-shard incremental state kept continuously fresh by the ingestion
/// pipeline. Each EventBus shard owns one StreamState; because events are
/// routed by grid cell, a cell's state lives in exactly one shard and no
/// cross-shard synchronization is ever needed on the hot path.
///
/// Three views are maintained per shard:
///   * a time-based sliding window of recent trip destinations with
///     per-grid-cell demand counts (the stream replacement for the
///     full-history G-sample rescans of the batch path — the 2-D KS regime
///     check of Algorithm 2 runs directly on these window points);
///   * exponentially decayed per-cell arrival-rate estimates
///     (events/second with a configurable half-life), the live analogue of
///     the offline per-grid expected arrivals w_i;
///   * a low-battery watchlist fed by battery telemetry — the stream-side
///     trigger set of the tier-two incentive mechanism (a bike enters when
///     its reported SoC drops below the threshold and leaves on recharge).
///
/// All updates are O(1) amortized; snapshots are deterministic (sorted by
/// cell / bike id) so merged multi-shard views are byte-stable regardless
/// of shard count.

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "data/trip.h"
#include "geo/point.h"
#include "stream/event.h"

namespace esharing::stream {

struct StreamStateConfig {
  data::Seconds window_length{data::kSecondsPerHour};  ///< sliding window span
  double rate_halflife_s{1800.0};  ///< arrival-rate decay half-life
  double low_soc_threshold{0.2};   ///< watchlist entry threshold (SoC)
  double cell_m{100.0};            ///< demand-count cell edge (paper: 100 m)

  /// \throws std::invalid_argument on the first violated constraint.
  void validate() const;
};

/// One entry of the low-battery watchlist.
struct WatchEntry {
  std::int64_t bike_id{0};
  geo::Point where{0.0, 0.0};
  double soc{0.0};
  data::Seconds reported_at{0};
};

/// Deterministic point-in-time copy of one shard's (or a merged) state.
struct StateSnapshot {
  struct CellCount {
    std::int64_t cx{0};
    std::int64_t cy{0};
    std::uint64_t count{0};   ///< events currently inside the window
    double rate_per_s{0.0};   ///< decayed arrival-rate estimate
  };
  struct WindowPoint {
    std::uint64_t seq{0};     ///< publish order; merge key across shards
    geo::Point where{0.0, 0.0};
  };

  data::Seconds now{0};                 ///< latest event time observed
  std::vector<CellCount> cells;         ///< sorted by (cx, cy)
  std::vector<WindowPoint> window;      ///< window destinations, seq order
  std::vector<WatchEntry> watchlist;    ///< sorted by bike id

  [[nodiscard]] std::uint64_t window_size() const { return window.size(); }
  /// Window destinations as bare points (KS-test input), in seq order.
  [[nodiscard]] std::vector<geo::Point> window_points() const;
};

class StreamState {
 public:
  /// \throws std::invalid_argument on invalid config.
  explicit StreamState(StreamStateConfig config);

  /// Fold one event into the shard state. Trip ends update the demand
  /// window and rates; battery telemetry maintains the watchlist; trip
  /// starts only advance the clock (pickups are the incentive driver's
  /// concern, not a demand signal for placement).
  void ingest(const Event& e);

  [[nodiscard]] const StreamStateConfig& config() const { return config_; }
  /// Latest event time observed by this shard.
  [[nodiscard]] data::Seconds now() const { return now_; }
  [[nodiscard]] std::size_t window_size() const { return window_.size(); }
  [[nodiscard]] std::size_t watchlist_size() const { return watch_.size(); }
  [[nodiscard]] std::uint64_t events_ingested() const { return ingested_; }

  /// Destinations currently inside the sliding window, in arrival (seq)
  /// order — the sample G the stream-side KS regime check runs on.
  [[nodiscard]] std::vector<geo::Point> window_points() const;

  /// Decayed arrival-rate estimate (events/s) of the cell containing `p`,
  /// evaluated at time `at`.
  [[nodiscard]] double arrival_rate(geo::Point p, data::Seconds at) const;

  /// Deterministic snapshot of this shard, evaluated at the shard's own
  /// clock. Equivalent to snapshot(now()).
  [[nodiscard]] StateSnapshot snapshot() const;

  /// Snapshot evaluated at `as_of` (clamped to at least the shard clock):
  /// window entries and cell counts reflect the sliding window as of that
  /// time and rates decay to it. Shards evict lazily — only when they
  /// ingest — so their raw state can lag a global clock; snapshotting every
  /// shard at the same `as_of` is what makes merged views shard-count
  /// invariant.
  [[nodiscard]] StateSnapshot snapshot(data::Seconds as_of) const;

  /// Deterministic merge of per-shard snapshots: cells concatenate (shards
  /// own disjoint cells), window points re-merge by seq, watchlists
  /// concatenate and re-sort by bike id.
  [[nodiscard]] static StateSnapshot merge(
      const std::vector<StateSnapshot>& shards);

  // --- checkpoint support (see checkpoint.h for the container format) ----
  void save(std::ostream& os) const;
  [[nodiscard]] static StreamState restore(std::istream& is,
                                           StreamStateConfig config);
  /// Structural equality; used by checkpoint round-trip verification.
  [[nodiscard]] bool equals(const StreamState& other) const;

 private:
  struct CellKey {
    std::int64_t cx{0};
    std::int64_t cy{0};
    friend bool operator==(CellKey a, CellKey b) {
      return a.cx == b.cx && a.cy == b.cy;
    }
  };
  /// Deterministic key order for snapshots and checkpoints (sorted_view).
  static bool cell_key_less(CellKey a, CellKey b) {
    return a.cx != b.cx ? a.cx < b.cx : a.cy < b.cy;
  }
  struct CellKeyHash {
    std::size_t operator()(CellKey k) const {
      std::uint64_t h = static_cast<std::uint64_t>(k.cx) * 0x9E3779B97F4A7C15ULL;
      h ^= static_cast<std::uint64_t>(k.cy) + 0x9E3779B97F4A7C15ULL +
           (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };
  struct CellState {
    std::uint64_t in_window{0};
    double rate{0.0};                ///< decayed events/s
    data::Seconds rate_updated{0};   ///< decay reference time
  };
  struct WindowEntry {
    data::Seconds time{0};
    std::uint64_t seq{0};
    geo::Point where{0.0, 0.0};
    CellKey cell{};
  };

  [[nodiscard]] CellKey cell_of(geo::Point p) const;
  void evict(data::Seconds now);
  void advance_clock(data::Seconds t);

  StreamStateConfig config_;
  data::Seconds now_{0};
  bool saw_event_{false};
  std::uint64_t ingested_{0};
  std::deque<WindowEntry> window_;
  std::unordered_map<CellKey, CellState, CellKeyHash> cells_;
  std::unordered_map<std::int64_t, WatchEntry> watch_;
};

}  // namespace esharing::stream
