#include "stream/drivers.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "data/wire.h"
#include "exec/thread_pool.h"
#include "obs/registry.h"
#include "stats/ks2d.h"

namespace esharing::stream {

using geo::Point;

namespace {

namespace wire = data::wire;
constexpr std::uint64_t kDriverMagic = 0x4553545244525631ULL;  // "ESTRDRV1"
// v2: + trip_ends_total/reanchors (the landmark re-anchor cadence state).
// v3: + forecast_refreshes and the per-cell hourly accumulator behind the
//     batched forecast refresh (written even when the feature is off, as
//     an empty section).
constexpr std::uint64_t kDriverVersion = 3;

constexpr double kSecondsPerHour = 3600.0;

struct DriverObsMetrics {
  obs::Counter& events;
  obs::Counter& trip_ends;
  obs::Counter& regime_checks;
  obs::Counter& reanchors;
  obs::Counter& forecast_refreshes;
  obs::Counter& batch_segments;
  obs::Gauge& regime_similarity;
  obs::Counter& sessions_opened;
  obs::Counter& watchlist_assigned;

  static DriverObsMetrics& get() {
    static DriverObsMetrics m{
        obs::Registry::global().counter("stream.placer_driver.events"),
        obs::Registry::global().counter("stream.placer_driver.trip_ends"),
        obs::Registry::global().counter("stream.placer_driver.regime_checks"),
        obs::Registry::global().counter("stream.placer_driver.reanchors"),
        obs::Registry::global().counter(
            "stream.placer_driver.forecast_refreshes"),
        obs::Registry::global().counter("stream.placer_driver.batch_segments"),
        obs::Registry::global().gauge("stream.placer_driver.regime_similarity"),
        obs::Registry::global().counter("stream.incentive_driver.sessions_opened"),
        obs::Registry::global().counter("stream.incentive_driver.watchlist_assigned"),
    };
    return m;
  }
};

}  // namespace

void PlacerDriverConfig::validate() const {
  state.validate();
  if (regime_check_period > 0 && regime_min_samples == 0) {
    throw std::invalid_argument(
        "PlacerDriverConfig: regime_min_samples = 0 is invalid: the KS "
        "regime check needs at least one window sample (set "
        "regime_check_period = 0 to disable the check instead)");
  }
  if (reanchor_period > 0 && reanchor_min_cells == 0) {
    throw std::invalid_argument(
        "PlacerDriverConfig: reanchor_min_cells = 0 is invalid: a "
        "re-anchor needs at least one demand cell to build an instance "
        "from (set reanchor_period = 0 to disable re-anchoring instead)");
  }
  if (ks_sample_budget > 0 && ks_sample_budget < 4) {
    throw std::invalid_argument(
        "PlacerDriverConfig: ks_sample_budget = " +
        std::to_string(ks_sample_budget) +
        " is invalid: a 2-D KS statistic over fewer than 4 points per side "
        "is meaningless (set ks_sample_budget = 0 to disable subsampling "
        "instead)");
  }
  if (forecast_history_hours > 0) {
    forecast_rnn.validate();
    if (forecast_history_hours < forecast_rnn.lookback + 2) {
      throw std::invalid_argument(
          "PlacerDriverConfig: forecast_history_hours = " +
          std::to_string(forecast_history_hours) +
          " is invalid: the batch forecaster needs at least lookback + 2 = " +
          std::to_string(forecast_rnn.lookback + 2) +
          " hourly points per cell (set forecast_history_hours = 0 to "
          "disable forecast refreshes instead)");
    }
  }
}

std::vector<Point> ks_stratified_sample(const std::vector<Point>& points,
                                        std::size_t budget) {
  const std::size_t n = points.size();
  if (budget == 0 || n <= budget) return points;
  std::vector<Point> sample;
  sample.reserve(budget);
  for (std::size_t j = 0; j < budget; ++j) {
    // Midpoint of stratum j of `budget` equal time slices.
    sample.push_back(points[(2 * j + 1) * n / (2 * budget)]);
  }
  return sample;
}

OnlinePlacerDriver::OnlinePlacerDriver(core::ESharing& system,
                                       const EventBus& bus,
                                       std::vector<Point> historical_sample,
                                       PlacerDriverConfig config)
    : system_(&system), bus_(&bus), config_(config) {
  config_.validate();
  if (!system.online_started()) {
    throw std::logic_error(
        "OnlinePlacerDriver: the system must be online (call start_online) "
        "before streaming requests into it");
  }
  states_.reserve(bus.shard_count());
  for (std::size_t s = 0; s < bus.shard_count(); ++s) {
    states_.emplace_back(config_.state);
  }
  regimes_.assign(bus.shard_count(), ShardRegime{});
  shard_history_.assign(bus.shard_count(), {});
  for (Point p : historical_sample) {
    shard_history_[bus.shard_of(p)].push_back(p);
  }
}

std::optional<solver::OnlineDecision> OnlinePlacerDriver::consume(
    const Event& e) {
  ingest_shard(bus_->shard_of(e.where), &e, 1);
  return decide(e);
}

void OnlinePlacerDriver::ingest_shard(std::size_t shard, const Event* events,
                                      std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const Event& e = events[i];
    states_[shard].ingest(e);
    if (obs::enabled()) DriverObsMetrics::get().events.add();
    if (e.kind != EventKind::kTripEnd) continue;
    ShardRegime& regime = regimes_[shard];
    ++regime.trip_ends;
    if (obs::enabled()) DriverObsMetrics::get().trip_ends.add();
    if (config_.regime_check_period > 0 &&
        regime.trip_ends % config_.regime_check_period == 0) {
      run_regime_check(shard);
    }
  }
}

std::optional<solver::OnlineDecision> OnlinePlacerDriver::decide(
    const Event& e) {
  ++consumed_;
  last_seq_ = e.seq;
  if (e.kind != EventKind::kTripEnd) return std::nullopt;
  const auto decision = system_->handle_request(e.where, e.weight);
  ++trip_ends_total_;
  if (config_.forecast_history_hours > 0) {
    // Hourly per-cell accumulation for the batch forecast refresh. Runs in
    // the sequential decision stage, so the accumulator is a pure function
    // of the merged seq order — shard-count and lane invariant.
    const double cell = config_.state.cell_m;
    const std::pair<std::int64_t, std::int64_t> key{
        static_cast<std::int64_t>(std::floor(e.where.x / cell)),
        static_cast<std::int64_t>(std::floor(e.where.y / cell))};
    const auto hour = static_cast<std::int64_t>(
        std::floor(static_cast<double>(e.time) / kSecondsPerHour));
    auto& hours = forecast_hours_[key];
    hours[hour] += e.weight;
    // Bound the touched cell to the trailing window (hours only advance).
    const auto horizon =
        static_cast<std::int64_t>(config_.forecast_history_hours);
    while (!hours.empty() && hours.begin()->first < hour - horizon) {
      hours.erase(hours.begin());
    }
  }
  if (config_.reanchor_period > 0 &&
      trip_ends_total_ % config_.reanchor_period == 0) {
    run_reanchor();
  }
  return decision;
}

std::size_t OnlinePlacerDriver::consume_batch(
    std::span<const Event> events, std::size_t lanes,
    std::vector<solver::OnlineDecision>* decisions_out) {
  if (events.empty()) return 0;
  const std::size_t num_shards = states_.size();
  // Scratch reused across segments: each shard's FIFO subsequence of the
  // current segment.
  std::vector<std::vector<Event>> per_shard(num_shards);

  std::size_t begin = 0;
  while (begin < events.size()) {
    // Cut the segment at the next re-anchor trigger: run_reanchor reads
    // the merged snapshot of *all* shard states, so ingestion must not run
    // ahead of a trigger. trip_ends_total_ only advances in decide(), so
    // simulate the counter forward to find the cut.
    std::size_t end = events.size();
    if (config_.reanchor_period > 0) {
      std::uint64_t trip_ends = trip_ends_total_;
      for (std::size_t i = begin; i < events.size(); ++i) {
        if (events[i].kind != EventKind::kTripEnd) continue;
        if (++trip_ends % config_.reanchor_period == 0) {
          end = i + 1;
          break;
        }
      }
    }

    for (auto& bucket : per_shard) bucket.clear();
    for (std::size_t i = begin; i < end; ++i) {
      per_shard[bus_->shard_of(events[i].where)].push_back(events[i]);
    }
    // Shard stage: each lane folds whole shards; grain 1 keeps one shard
    // per chunk. Bit-identical at any width because ingest_shard touches
    // only its own shard's state and the fold order within a shard is its
    // FIFO order either way.
    exec::parallel_for(
        num_shards, /*grain=*/1,
        [&](std::size_t first, std::size_t last, std::size_t) {
          for (std::size_t s = first; s < last; ++s) {
            if (!per_shard[s].empty()) {
              ingest_shard(s, per_shard[s].data(), per_shard[s].size());
            }
          }
        },
        lanes);
    // Decision stage: sequential, in merged seq order.
    for (std::size_t i = begin; i < end; ++i) {
      auto decision = decide(events[i]);
      if (decision.has_value() && decisions_out != nullptr) {
        decisions_out->push_back(*decision);
      }
    }
    if (obs::enabled()) DriverObsMetrics::get().batch_segments.add();
    begin = end;
  }
  return events.size();
}

void OnlinePlacerDriver::run_reanchor() {
  // The merged snapshot is shard-count invariant and, because events are
  // consumed in seq order, the global max clock equals this event's time
  // at every shard count — so the demand instance (and the warm re-solve
  // it feeds) is identical no matter how the stream was sharded.
  const StateSnapshot snap = merged_snapshot();
  if (snap.cells.size() < config_.reanchor_min_cells) return;
  const double cell = config_.state.cell_m;

  // Per-cell expected arrivals: a batch forecast of the next hour when the
  // accumulator holds enough completed hours, else the raw window counts.
  std::vector<double> weights;
  weights.reserve(snap.cells.size());
  bool used_forecast = false;
  if (config_.forecast_history_hours > 0 && !forecast_hours_.empty()) {
    // Completed hours are strictly before the snapshot clock's bucket; the
    // uniform series length is clamped to what has actually accumulated.
    const auto now_hour = static_cast<std::int64_t>(
        std::floor(static_cast<double>(snap.now) / kSecondsPerHour));
    std::int64_t first_hour = now_hour;
    for (const auto& [key, hours] : forecast_hours_) {
      if (!hours.empty()) {
        first_hour = std::min(first_hour, hours.begin()->first);
      }
    }
    const auto span = static_cast<std::size_t>(
        std::max<std::int64_t>(0, now_hour - first_hour));
    const std::size_t n = std::min(config_.forecast_history_hours, span);
    if (n >= config_.forecast_rnn.lookback + 2) {
      std::vector<ml::Series> series(snap.cells.size());
      for (std::size_t i = 0; i < snap.cells.size(); ++i) {
        const auto it =
            forecast_hours_.find({snap.cells[i].cx, snap.cells[i].cy});
        ml::Series& s = series[i];
        s.assign(n, 0.0);
        if (it != forecast_hours_.end()) {
          for (std::size_t j = 0; j < n; ++j) {
            const auto hour = now_hour - static_cast<std::int64_t>(n - j);
            const auto h = it->second.find(hour);
            if (h != it->second.end()) s[j] = h->second;
          }
        }
      }
      ml::batch::BatchRnn model(config_.forecast_rnn);
      model.fit(series);
      const auto forecasts = model.forecast(series, 1);
      for (std::size_t i = 0; i < snap.cells.size(); ++i) {
        weights.push_back(std::max(0.0, forecasts[i][0]));
      }
      used_forecast = true;
    }
  }
  if (!used_forecast) {
    for (const auto& c : snap.cells) {
      weights.push_back(static_cast<double>(c.count));
    }
  }

  std::vector<data::DemandSite> sites;
  sites.reserve(snap.cells.size());
  for (std::size_t i = 0; i < snap.cells.size(); ++i) {
    // Cell centroid as the candidate location — a bit-deterministic
    // function of the merged snapshot. Forecast weights drop predicted-idle
    // cells; the raw-count path keeps every cell, exactly as before.
    if (used_forecast && weights[i] <= 0.0) continue;
    sites.push_back({{(static_cast<double>(snap.cells[i].cx) + 0.5) * cell,
                      (static_cast<double>(snap.cells[i].cy) + 0.5) * cell},
                     weights[i]});
  }
  if (used_forecast && sites.size() < config_.reanchor_min_cells) {
    // Degenerate forecast (everything predicted idle): fall back to the
    // raw counts rather than anchoring on an empty instance.
    sites.clear();
    for (const auto& c : snap.cells) {
      sites.push_back({{(static_cast<double>(c.cx) + 0.5) * cell,
                        (static_cast<double>(c.cy) + 0.5) * cell},
                       static_cast<double>(c.count)});
    }
    used_forecast = false;
  }
  system_->reanchor(sites);
  ++reanchors_;
  if (used_forecast) ++forecast_refreshes_;
  if (obs::enabled()) {
    DriverObsMetrics::get().reanchors.add();
    if (used_forecast) DriverObsMetrics::get().forecast_refreshes.add();
  }
}

std::size_t OnlinePlacerDriver::pump(EventBus& bus) {
  std::vector<Event> batch;
  bus.drain_all_ordered(batch);
  for (const Event& e : batch) consume(e);
  return batch.size();
}

void OnlinePlacerDriver::run_regime_check(std::size_t shard) {
  const auto& history = shard_history_[shard];
  const auto window = states_[shard].window_points();
  if (history.empty() || window.size() < config_.regime_min_samples) return;
  // Subsample only when over budget so the common case stays copy-free.
  const std::size_t budget = config_.ks_sample_budget;
  const std::vector<Point>* href = &history;
  const std::vector<Point>* wref = &window;
  std::vector<Point> hbuf;
  std::vector<Point> wbuf;
  if (budget > 0 && history.size() > budget) {
    hbuf = ks_stratified_sample(history, budget);
    href = &hbuf;
  }
  if (budget > 0 && window.size() > budget) {
    wbuf = ks_stratified_sample(window, budget);
    wref = &wbuf;
  }
  const auto result = stats::ks2d_test(*href, *wref, config_.ks_peacock_limit);
  ShardRegime& regime = regimes_[shard];
  regime.similarity = result.similarity;
  ++regime.checks;
  if (obs::enabled()) {
    DriverObsMetrics::get().regime_checks.add();
    DriverObsMetrics::get().regime_similarity.set(result.similarity);
    obs::Registry::global().emit(
        "stream.regime_check",
        {{"shard", shard},
         {"similarity", result.similarity},
         {"window", window.size()}});
  }
}

const StreamState& OnlinePlacerDriver::shard_state(std::size_t shard) const {
  if (shard >= states_.size()) {
    throw std::out_of_range("OnlinePlacerDriver::shard_state: shard " +
                            std::to_string(shard) + " of " +
                            std::to_string(states_.size()));
  }
  return states_[shard];
}

const ShardRegime& OnlinePlacerDriver::shard_regime(std::size_t shard) const {
  if (shard >= regimes_.size()) {
    throw std::out_of_range("OnlinePlacerDriver::shard_regime: shard " +
                            std::to_string(shard) + " of " +
                            std::to_string(regimes_.size()));
  }
  return regimes_[shard];
}

StateSnapshot OnlinePlacerDriver::merged_snapshot() const {
  // Snapshot every shard at the global clock so lazily-evicted entries and
  // decay references line up — merged views are then shard-count invariant.
  data::Seconds global_now = 0;
  for (const auto& st : states_) global_now = std::max(global_now, st.now());
  std::vector<StateSnapshot> snaps;
  snaps.reserve(states_.size());
  for (const auto& st : states_) snaps.push_back(st.snapshot(global_now));
  return StreamState::merge(snaps);
}

std::vector<WatchEntry> OnlinePlacerDriver::watchlist() const {
  return merged_snapshot().watchlist;
}

void OnlinePlacerDriver::save(std::ostream& os) const {
  wire::write_u64(os, kDriverMagic);
  wire::write_u64(os, kDriverVersion);
  wire::write_u64(os, states_.size());
  wire::write_u64(os, consumed_);
  wire::write_u64(os, last_seq_);
  wire::write_u64(os, trip_ends_total_);
  wire::write_u64(os, reanchors_);
  wire::write_u64(os, forecast_refreshes_);
  // Forecast accumulator (empty when forecast_history_hours = 0): cell
  // count, then per cell (cx, cy, hour count, per hour bucket + weight).
  wire::write_u64(os, forecast_hours_.size());
  for (const auto& [key, hours] : forecast_hours_) {
    wire::write_i64(os, key.first);
    wire::write_i64(os, key.second);
    wire::write_u64(os, hours.size());
    for (const auto& [hour, weight] : hours) {
      wire::write_i64(os, hour);
      wire::write_f64(os, weight);
    }
  }
  for (const auto& regime : regimes_) {
    wire::write_f64(os, regime.similarity);
    wire::write_u64(os, regime.checks);
    wire::write_u64(os, regime.trip_ends);
  }
  for (const auto& st : states_) st.save(os);
}

void OnlinePlacerDriver::restore_from(std::istream& is) {
  if (wire::read_u64(is) != kDriverMagic) {
    throw std::runtime_error(
        "OnlinePlacerDriver::restore_from: bad magic — not a driver "
        "checkpoint blob");
  }
  const std::uint64_t version = wire::read_u64(is);
  if (version != kDriverVersion) {
    throw std::runtime_error(
        "OnlinePlacerDriver::restore_from: unsupported version " +
        std::to_string(version));
  }
  const std::uint64_t shards = wire::read_u64(is);
  if (shards != states_.size()) {
    throw std::runtime_error(
        "OnlinePlacerDriver::restore_from: checkpoint has " +
        std::to_string(shards) + " shards, this driver has " +
        std::to_string(states_.size()) +
        " — restore with a bus of the same shard count");
  }
  consumed_ = wire::read_u64(is);
  last_seq_ = wire::read_u64(is);
  trip_ends_total_ = wire::read_u64(is);
  reanchors_ = wire::read_u64(is);
  forecast_refreshes_ = wire::read_u64(is);
  forecast_hours_.clear();
  const std::uint64_t forecast_cells = wire::read_u64(is);
  for (std::uint64_t c = 0; c < forecast_cells; ++c) {
    const std::int64_t cx = wire::read_i64(is);
    const std::int64_t cy = wire::read_i64(is);
    auto& hours = forecast_hours_[{cx, cy}];
    const std::uint64_t n_hours = wire::read_u64(is);
    for (std::uint64_t h = 0; h < n_hours; ++h) {
      const std::int64_t hour = wire::read_i64(is);
      hours[hour] = wire::read_f64(is);
    }
  }
  for (auto& regime : regimes_) {
    regime.similarity = wire::read_f64(is);
    regime.checks = wire::read_u64(is);
    regime.trip_ends = wire::read_u64(is);
  }
  for (std::size_t s = 0; s < states_.size(); ++s) {
    states_[s] = StreamState::restore(is, config_.state);
  }
}

// --- IncentiveDriver --------------------------------------------------------

void IncentiveDriverConfig::validate() const {
  if (!(assign_radius_m > 0.0)) {
    throw std::invalid_argument(
        "IncentiveDriverConfig: assign_radius_m = " +
        std::to_string(assign_radius_m) +
        " is invalid: the watchlist-to-parking assignment radius must be "
        "positive");
  }
}

IncentiveDriver::IncentiveDriver(IncentiveDriverConfig config)
    : config_(config) {
  config_.validate();
}

void IncentiveDriver::fold_session_totals() {
  if (!session_.has_value()) return;
  paid_closed_ += session_->total_incentives_paid();
  offers_closed_ += session_->offers_made();
  relocations_closed_ += session_->relocations();
}

void IncentiveDriver::open_session(const std::vector<Point>& parkings,
                                   const std::vector<WatchEntry>& watchlist) {
  if (parkings.empty()) {
    throw std::invalid_argument("IncentiveDriver::open_session: no parkings");
  }
  fold_session_totals();
  std::vector<core::EnergyStation> stations;
  stations.reserve(parkings.size());
  for (Point p : parkings) stations.push_back({p, {}});
  geo::SpatialIndex index(parkings);
  std::size_t assigned = 0;
  for (const WatchEntry& w : watchlist) {
    const std::size_t s = index.nearest(w.where);
    if (s == geo::SpatialIndex::npos) continue;
    if (geo::distance(parkings[s], w.where) > config_.assign_radius_m) continue;
    stations[s].low_bikes.push_back(static_cast<std::size_t>(w.bike_id));
    ++assigned;
  }
  session_.emplace(std::move(stations), config_.incentive);
  session_index_ = std::move(index);
  paid_total_ = paid_closed_;
  offers_total_ = offers_closed_;
  relocations_total_ = relocations_closed_;
  if (obs::enabled()) {
    DriverObsMetrics::get().sessions_opened.add();
    DriverObsMetrics::get().watchlist_assigned.add(assigned);
  }
}

core::Offer IncentiveDriver::handle_trip(
    const Event& e, Point assigned,
    const core::IncentiveMechanism::CanRideFn& can_ride) {
  core::Offer offer;
  if (!session_.has_value()) return offer;
  const std::size_t pickup = session_index_.nearest(e.origin);
  if (pickup == geo::SpatialIndex::npos) return offer;
  const core::UserBehavior user{e.user_max_walk_m, e.user_min_reward};
  offer = session_->handle_pickup(pickup, assigned, user, can_ride);
  paid_total_ = paid_closed_ + session_->total_incentives_paid();
  offers_total_ = offers_closed_ + session_->offers_made();
  relocations_total_ = relocations_closed_ + session_->relocations();
  return offer;
}

const core::IncentiveMechanism& IncentiveDriver::session() const {
  if (!session_.has_value()) {
    throw std::logic_error("IncentiveDriver::session: no open session");
  }
  return *session_;
}

core::IncentiveMechanism& IncentiveDriver::session() {
  if (!session_.has_value()) {
    throw std::logic_error("IncentiveDriver::session: no open session");
  }
  return *session_;
}

void IncentiveDriver::save(std::ostream& os) const {
  wire::write_f64(os, paid_closed_);
  wire::write_u64(os, offers_closed_);
  wire::write_u64(os, relocations_closed_);
  wire::write_u8(os, session_.has_value() ? 1 : 0);
  if (session_.has_value()) session_->save(os);
}

void IncentiveDriver::restore_from(std::istream& is) {
  paid_closed_ = wire::read_f64(is);
  offers_closed_ = wire::read_u64(is);
  relocations_closed_ = wire::read_u64(is);
  const bool has_session = wire::read_u8(is) != 0;
  if (has_session) {
    session_ = core::IncentiveMechanism::restore(is, config_.incentive);
    std::vector<Point> locations;
    locations.reserve(session_->stations().size());
    for (const auto& s : session_->stations()) locations.push_back(s.location);
    session_index_ = geo::SpatialIndex(locations);
  } else {
    session_.reset();
    session_index_ = geo::SpatialIndex();
  }
  paid_total_ = paid_closed_ +
                (session_.has_value() ? session_->total_incentives_paid() : 0.0);
  offers_total_ =
      offers_closed_ + (session_.has_value() ? session_->offers_made() : 0);
  relocations_total_ =
      relocations_closed_ + (session_.has_value() ? session_->relocations() : 0);
}

}  // namespace esharing::stream
