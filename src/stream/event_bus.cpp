#include "stream/event_bus.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/registry.h"

namespace esharing::stream {

namespace {

struct BusObsMetrics {
  obs::Counter& published;
  obs::Counter& dropped_oldest;
  obs::Counter& rejected;
  obs::Counter& blocked;
  obs::Counter& drained_events;
  obs::Counter& drained_batches;

  static BusObsMetrics& get() {
    static BusObsMetrics m{
        obs::Registry::global().counter("stream.event_bus.published"),
        obs::Registry::global().counter("stream.event_bus.dropped_oldest"),
        obs::Registry::global().counter("stream.event_bus.rejected"),
        obs::Registry::global().counter("stream.event_bus.blocked_publishes"),
        obs::Registry::global().counter("stream.event_bus.drained_events"),
        obs::Registry::global().counter("stream.event_bus.drained_batches"),
    };
    return m;
  }
};

}  // namespace

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kTripStart: return "trip_start";
    case EventKind::kTripEnd: return "trip_end";
    case EventKind::kBatteryLevel: return "battery_level";
  }
  return "unknown";
}

const char* backpressure_policy_name(BackpressurePolicy p) {
  switch (p) {
    case BackpressurePolicy::kBlock: return "block";
    case BackpressurePolicy::kDropOldest: return "drop_oldest";
    case BackpressurePolicy::kReject: return "reject";
  }
  return "unknown";
}

void EventBusConfig::validate() const {
  const auto fail = [](const std::string& field, double got,
                       const std::string& why) {
    throw std::invalid_argument("EventBusConfig: " + field + " = " +
                                std::to_string(got) + " is invalid: " + why);
  };
  if (shard_count < 1) {
    fail("shard_count", static_cast<double>(shard_count),
         "the bus needs at least one shard to route events to");
  }
  if (queue_capacity < 1) {
    fail("queue_capacity", static_cast<double>(queue_capacity),
         "a shard ring must hold at least one event");
  }
  if (max_batch < 1) {
    fail("max_batch", static_cast<double>(max_batch),
         "a drain batch must make progress on at least one event");
  }
  if (max_batch > queue_capacity) {
    fail("max_batch", static_cast<double>(max_batch),
         "a drain batch cannot exceed queue_capacity = " +
             std::to_string(queue_capacity) +
             " (the ring never holds that many events)");
  }
  if (!(route_cell_m > 0.0)) {
    fail("route_cell_m", route_cell_m,
         "the routing cell edge is a length in meters and must be positive");
  }
}

EventBus::EventBus(EventBusConfig config) : config_(config) {
  config_.validate();
  shards_.reserve(config_.shard_count);
  for (std::size_t s = 0; s < config_.shard_count; ++s) {
    shards_.push_back(std::make_unique<Shard>(config_.queue_capacity));
  }
}

std::size_t EventBus::shard_of(geo::Point p) const {
  // Same Fibonacci cell-coordinate mixing the spatial index uses; the
  // floor() keeps negative coordinates consistent across platforms.
  const auto cx =
      static_cast<std::int64_t>(std::floor(p.x / config_.route_cell_m));
  const auto cy =
      static_cast<std::int64_t>(std::floor(p.y / config_.route_cell_m));
  std::uint64_t h = static_cast<std::uint64_t>(cx) * 0x9E3779B97F4A7C15ULL;
  h ^= static_cast<std::uint64_t>(cy) + 0x9E3779B97F4A7C15ULL + (h << 6) +
       (h >> 2);
  return static_cast<std::size_t>(h % shards_.size());
}

bool EventBus::publish(Event e) {
  return publish_batch(std::span<const Event>(&e, 1)) == 1;
}

std::size_t EventBus::publish_batch(std::span<const Event> events) {
  const std::size_t n = events.size();
  if (n == 0) return 0;
  const std::uint64_t base =
      next_seq_.fetch_add(static_cast<std::uint64_t>(n),
                          std::memory_order_relaxed);

  // Counting scatter: stamp seqs in span order and lay each shard's
  // sub-batch out contiguously (relative order preserved) so the lock
  // below is taken once per touched shard, not once per event.
  const std::size_t num_shards = shards_.size();
  std::vector<std::size_t> dest(n);
  std::vector<std::size_t> offset(num_shards + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    dest[i] = num_shards == 1 ? 0 : shard_of(events[i].where);
    ++offset[dest[i] + 1];
  }
  for (std::size_t s = 0; s < num_shards; ++s) offset[s + 1] += offset[s];
  std::vector<Event> staged(n);
  std::vector<std::size_t> cursor(offset.begin(), offset.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    Event e = events[i];
    e.seq = base + static_cast<std::uint64_t>(i);
    staged[cursor[dest[i]]++] = e;
  }

  std::uint64_t blocked_n = 0;
  std::uint64_t dropped_n = 0;
  std::uint64_t rejected_n = 0;
  std::size_t accepted = 0;
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::size_t lo = offset[s];
    const std::size_t hi = offset[s + 1];
    if (lo == hi) continue;
    Shard& shard = *shards_[s];
    es::UniqueLock lock(shard.mu);
    for (std::size_t i = lo; i < hi; ++i) {
      if (shard.count == config_.queue_capacity) {
        if (config_.policy == BackpressurePolicy::kBlock) {
          ++shard.blocked;
          ++blocked_n;
          // Explicit recheck loop (not the predicate overload): the
          // guarded reads stay in this annotated scope where the analysis
          // can see the capability is held across the wait.
          while (shard.count == config_.queue_capacity) {
            shard.space.wait(lock);
          }
        } else if (config_.policy == BackpressurePolicy::kDropOldest) {
          shard.head = (shard.head + 1) % config_.queue_capacity;
          --shard.count;
          ++shard.dropped;
          ++dropped_n;
        } else {  // kReject: the lock is held, so no drain can free space
                  // for the rest of this sub-batch — shed it all at once.
          shard.rejected += hi - i;
          rejected_n += hi - i;
          break;
        }
      }
      shard.ring[(shard.head + shard.count) % config_.queue_capacity] =
          staged[i];
      ++shard.count;
      ++accepted;
    }
  }

  if (accepted > 0) {
    published_.fetch_add(static_cast<std::uint64_t>(accepted),
                         std::memory_order_relaxed);
  }
  if (obs::enabled()) {
    auto& m = BusObsMetrics::get();
    if (accepted > 0) m.published.add(static_cast<std::uint64_t>(accepted));
    if (blocked_n > 0) m.blocked.add(blocked_n);
    if (dropped_n > 0) m.dropped_oldest.add(dropped_n);
    if (rejected_n > 0) m.rejected.add(rejected_n);
  }
  return accepted;
}

void EventBus::resume_seq(std::uint64_t next) {
  std::uint64_t current = next_seq_.load(std::memory_order_relaxed);
  while (current < next &&
         !next_seq_.compare_exchange_weak(current, next,
                                          std::memory_order_relaxed)) {
  }
}

std::size_t EventBus::drain(std::size_t shard_index, std::vector<Event>& out) {
  if (shard_index >= shards_.size()) {
    throw std::out_of_range("EventBus::drain: shard " +
                            std::to_string(shard_index) + " of " +
                            std::to_string(shards_.size()));
  }
  Shard& shard = *shards_[shard_index];
  std::size_t n = 0;
  {
    const es::LockGuard lock(shard.mu);
    n = std::min(shard.count, config_.max_batch);
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(shard.ring[(shard.head + i) % config_.queue_capacity]);
    }
    shard.head = (shard.head + n) % config_.queue_capacity;
    shard.count -= n;
    shard.drained += n;
  }
  if (n > 0) {
    shard.space.notify_all();
    if (obs::enabled()) {
      BusObsMetrics::get().drained_events.add(n);
      BusObsMetrics::get().drained_batches.add();
    }
  }
  return n;
}

std::size_t EventBus::drain_all_ordered(std::vector<Event>& out) {
  const std::size_t before = out.size();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    while (drain(s, out) > 0) {
    }
  }
  // Per-shard batches are FIFO; a stable merge by seq restores the global
  // publish order across shards.
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(before), out.end(),
            BySeq{});
  return out.size() - before;
}

std::size_t EventBus::pending(std::size_t shard) const {
  if (shard >= shards_.size()) {
    throw std::out_of_range("EventBus::pending: shard " +
                            std::to_string(shard) + " of " +
                            std::to_string(shards_.size()));
  }
  const es::LockGuard lock(shards_[shard]->mu);
  return shards_[shard]->count;
}

std::size_t EventBus::pending_total() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) total += pending(s);
  return total;
}

BusStats EventBus::stats() const {
  BusStats st;
  st.published = published_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    const es::LockGuard lock(shard->mu);
    st.dropped_oldest += shard->dropped;
    st.rejected += shard->rejected;
    st.blocked_publishes += shard->blocked;
    st.drained += shard->drained;
  }
  return st;
}

}  // namespace esharing::stream
