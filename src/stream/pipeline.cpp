#include "stream/pipeline.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "exec/thread_pool.h"
#include "obs/registry.h"

namespace esharing::stream {

namespace {

struct PipelineObsMetrics {
  obs::Counter& pump_rounds;
  obs::Counter& lane_batches;
  obs::Counter& lane_events;
  obs::Counter& merged_events;
  obs::Counter& merge_stalls;
  obs::Gauge& lane_occupancy;

  static PipelineObsMetrics& get() {
    static PipelineObsMetrics m{
        obs::Registry::global().counter("stream.pipeline.pump_rounds"),
        obs::Registry::global().counter("stream.pipeline.lane_batches"),
        obs::Registry::global().counter("stream.pipeline.lane_events"),
        obs::Registry::global().counter("stream.pipeline.merged_events"),
        obs::Registry::global().counter("stream.pipeline.merge_stalls"),
        obs::Registry::global().gauge("stream.pipeline.lane_occupancy"),
    };
    return m;
  }
};

PipelineConfig validated(PipelineConfig config) {
  config.validate();
  return config;
}

}  // namespace

void PipelineConfig::validate() const {
  bus.validate();
  placer.validate();
  incentive.validate();
  // lanes: every value is legal (0 = pool width, 1 = inline) and all are
  // bit-identical; pump_every is clamped to the queue capacity at use.
}

Pipeline::Pipeline(core::ESharing& system,
                   std::vector<geo::Point> historical_sample,
                   PipelineConfig config)
    : config_(validated(std::move(config))),
      bus_(config_.bus),
      system_(&system) {
  placer_.emplace(system, bus_, std::move(historical_sample), config_.placer);
  incentive_.emplace(config_.incentive);
  lane_buffers_.resize(bus_.shard_count());
}

Pipeline::Pipeline(PipelineConfig config)
    : config_(validated(std::move(config))), bus_(config_.bus) {
  lane_buffers_.resize(bus_.shard_count());
}

void Pipeline::require_serving(const char* what) const {
  if (!placer_.has_value()) {
    throw std::logic_error(std::string("Pipeline::") + what +
                           ": transport-only pipeline — construct with a "
                           "core::ESharing system for the serving tier");
  }
}

OnlinePlacerDriver& Pipeline::placer_driver() {
  require_serving("placer_driver");
  return *placer_;
}

const OnlinePlacerDriver& Pipeline::placer_driver() const {
  require_serving("placer_driver");
  return *placer_;
}

IncentiveDriver& Pipeline::incentive_driver() {
  require_serving("incentive_driver");
  return *incentive_;
}

const IncentiveDriver& Pipeline::incentive_driver() const {
  require_serving("incentive_driver");
  return *incentive_;
}

std::size_t Pipeline::drain_round() {
  merged_.clear();
  const std::size_t num_shards = bus_.shard_count();

  // Lane stage: drain every shard completely; one shard per chunk, so up
  // to `lanes` shards drain concurrently and no two lanes ever touch the
  // same buffer. Bit-identical at every width — each buffer's content is
  // a pure function of its shard's ring.
  exec::parallel_for(
      num_shards, /*grain=*/1,
      [&](std::size_t first, std::size_t last, std::size_t) {
        for (std::size_t s = first; s < last; ++s) {
          auto& buf = lane_buffers_[s];
          buf.clear();
          while (bus_.drain(s, buf) > 0) {
          }
          // Concurrent publishers reserve seq ranges before locking the
          // shard, so a ring can interleave ranges; restore per-shard seq
          // order for the merge. Single-publisher rounds are already
          // sorted and pay one linear is_sorted scan.
          if (!std::is_sorted(buf.begin(), buf.end(), BySeq{})) {
            std::sort(buf.begin(), buf.end(), BySeq{});
          }
        }
      },
      config_.lanes);

  std::size_t total = 0;
  std::size_t busy = 0;
  std::uint64_t batches = 0;
  const std::size_t max_batch = config_.bus.max_batch;
  for (const auto& buf : lane_buffers_) {
    total += buf.size();
    if (!buf.empty()) {
      ++busy;
      batches += (buf.size() + max_batch - 1) / max_batch;
    }
  }

  // Merge stage: k-way min-seq scan over the shard cursors (shard counts
  // are small; the scan beats a heap and keeps ties impossible — seqs are
  // unique by construction).
  merged_.reserve(total);
  std::vector<std::size_t> cursor(num_shards, 0);
  std::uint64_t stalls = 0;
  for (std::size_t k = 0; k < total; ++k) {
    std::size_t best = num_shards;
    std::uint64_t best_seq = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t s = 0; s < num_shards; ++s) {
      if (cursor[s] < lane_buffers_[s].size() &&
          lane_buffers_[s][cursor[s]].seq < best_seq) {
        best = s;
        best_seq = lane_buffers_[s][cursor[s]].seq;
      }
    }
    merged_.push_back(lane_buffers_[best][cursor[best]++]);
    // A gap means the merge could not hand over the next publish-order
    // event (lost to drop/reject, or still in flight from a concurrent
    // publisher). The merge never waits — it counts and moves on.
    if (best_seq != next_expected_seq_) ++stalls;
    next_expected_seq_ = best_seq + 1;
  }

  ++pump_rounds_;
  lane_batches_ += batches;
  lane_events_ += total;
  merged_events_ += total;
  merge_stalls_ += stalls;
  // Occupancy of the last *non-empty* round — every pump terminates on an
  // empty round, which would otherwise pin the gauge at zero.
  if (total > 0) {
    lane_occupancy_ =
        static_cast<double>(busy) / static_cast<double>(num_shards);
  }
  if (obs::enabled()) {
    auto& m = PipelineObsMetrics::get();
    m.pump_rounds.add();
    if (batches > 0) m.lane_batches.add(batches);
    if (total > 0) {
      m.lane_events.add(total);
      m.merged_events.add(total);
      m.lane_occupancy.set(lane_occupancy_);
    }
    if (stalls > 0) m.merge_stalls.add(stalls);
  }
  return total;
}

std::size_t Pipeline::pump(std::vector<solver::OnlineDecision>* decisions_out) {
  require_serving("pump");
  std::size_t consumed = 0;
  while (drain_round() > 0) {
    placer_->consume_batch(merged_, config_.lanes, decisions_out);
    consumed += merged_.size();
  }
  return consumed;
}

std::size_t Pipeline::pump_decisions(const DecisionCallback& on_decision) {
  require_serving("pump_decisions");
  std::size_t consumed = 0;
  std::vector<solver::OnlineDecision> decisions;
  while (drain_round() > 0) {
    decisions.clear();
    placer_->consume_batch(merged_, config_.lanes, &decisions);
    std::size_t next = 0;
    for (const Event& e : merged_) {
      if (e.kind != EventKind::kTripEnd) continue;
      on_decision(e, decisions[next++]);
    }
    consumed += merged_.size();
  }
  return consumed;
}

std::size_t Pipeline::pump_into(const Consumer& consumer) {
  std::size_t consumed = 0;
  while (drain_round() > 0) {
    for (const Event& e : merged_) consumer(e);
    consumed += merged_.size();
  }
  return consumed;
}

ReplayResult Pipeline::replay(const std::vector<Event>& events) {
  require_serving("replay");
  const std::size_t capacity = config_.bus.queue_capacity;
  const std::size_t cadence =
      std::min(config_.pump_every == 0 ? capacity : config_.pump_every,
               capacity);
  ReplayResult result;
  std::size_t i = 0;
  while (i < events.size()) {
    const std::size_t n = std::min(cadence, events.size() - i);
    const std::size_t accepted =
        publish_batch(std::span<const Event>(events).subspan(i, n));
    result.published += accepted;
    result.rejected += n - accepted;
    result.consumed += pump(&result.decisions);
    i += n;
  }
  result.consumed += pump(&result.decisions);
  return result;
}

PipelineStats Pipeline::stats() const {
  PipelineStats st;
  st.bus = bus_.stats();
  st.pump_rounds = pump_rounds_;
  st.lane_batches = lane_batches_;
  st.lane_events = lane_events_;
  st.merged_events = merged_events_;
  st.merge_stalls = merge_stalls_;
  st.lane_occupancy = lane_occupancy_;
  return st;
}

void Pipeline::save_checkpoint(std::ostream& os) const {
  require_serving("save_checkpoint");
  stream::save_checkpoint(os, bus_, *placer_, *incentive_);
}

CheckpointInfo Pipeline::restore_checkpoint(std::istream& is) {
  require_serving("restore_checkpoint");
  const CheckpointInfo info =
      stream::restore_checkpoint(is, bus_, *system_, *placer_, *incentive_);
  // The bus seq counter fast-forwarded past the consumed prefix; resync
  // the stall detector so the first post-restore batch is not a gap.
  next_expected_seq_ = bus_.next_seq();
  return info;
}

void Pipeline::save_checkpoint_file(const std::string& path) const {
  require_serving("save_checkpoint_file");
  stream::save_checkpoint_file(path, bus_, *placer_, *incentive_);
}

CheckpointInfo Pipeline::restore_checkpoint_file(const std::string& path) {
  require_serving("restore_checkpoint_file");
  const CheckpointInfo info = stream::restore_checkpoint_file(
      path, bus_, *system_, *placer_, *incentive_);
  next_expected_seq_ = bus_.next_seq();
  return info;
}

}  // namespace esharing::stream
